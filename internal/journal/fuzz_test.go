package journal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"io"
	"testing"
)

// buildJournal frames the records into an in-memory journal image and
// returns the image plus each frame's [start, end) offsets.
func buildJournal(records [][]byte) ([]byte, [][2]int) {
	var buf bytes.Buffer
	buf.WriteString(magic)
	bounds := make([][2]int, len(records))
	for i, r := range records {
		start := buf.Len()
		var head [frameHeaderLen]byte
		binary.LittleEndian.PutUint32(head[0:4], uint32(len(r)))
		binary.LittleEndian.PutUint32(head[4:8], crc32.Checksum(r, castagnoli))
		buf.Write(head[:])
		buf.Write(r)
		bounds[i] = [2]int{start, buf.Len()}
	}
	return buf.Bytes(), bounds
}

// readAll drains a Reader, returning the records before its terminal error.
func readAll(t *testing.T, raw []byte) [][]byte {
	t.Helper()
	rd, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		return nil
	}
	var out [][]byte
	for {
		p, err := rd.Next()
		if err != nil {
			return out
		}
		out = append(out, p)
		if len(out) > len(raw) { // each frame consumes ≥ frameHeaderLen bytes
			t.Fatalf("reader produced more records (%d) than the input could hold", len(out))
		}
	}
}

// FuzzJournal corrupts valid journals — truncation, bit flips, duplicated
// frames — and checks the reader's recovery contract: never panic, and every
// record framed before the first corrupted byte is recovered intact.
func FuzzJournal(f *testing.F) {
	f.Add([]byte("abcdefghij"), uint8(3), uint8(0), uint32(9), uint8(0x80))
	f.Add([]byte(`{"kind":"meta"}{"kind":"replicate","rep":1}`), uint8(2), uint8(1), uint32(20), uint8(1))
	f.Add([]byte{}, uint8(1), uint8(0), uint32(0), uint8(0xff))
	f.Add(bytes.Repeat([]byte{0xa5}, 300), uint8(5), uint8(2), uint32(77), uint8(4))

	f.Fuzz(func(t *testing.T, blob []byte, nrec, op uint8, pos uint32, xor uint8) {
		// Split blob into 1..8 records (empty records included).
		n := int(nrec)%8 + 1
		records := make([][]byte, n)
		for i := 0; i < n; i++ {
			lo, hi := i*len(blob)/n, (i+1)*len(blob)/n
			records[i] = blob[lo:hi]
		}
		raw, bounds := buildJournal(records)

		switch op % 3 {
		case 0: // truncate the tail
			cut := int(pos) % (len(raw) + 1)
			mutated := raw[:cut]
			got := readAll(t, mutated)
			// Every frame wholly inside the cut must be recovered.
			intact := 0
			for _, b := range bounds {
				if b[1] <= cut {
					intact++
				}
			}
			if len(got) < intact {
				t.Fatalf("truncation at %d: recovered %d records, want ≥ %d", cut, len(got), intact)
			}
			for i := 0; i < intact; i++ {
				if !bytes.Equal(got[i], records[i]) {
					t.Fatalf("truncation at %d: record %d corrupted on recovery", cut, i)
				}
			}

		case 1: // flip bits of one byte
			if xor == 0 || len(raw) == 0 {
				return
			}
			mutated := bytes.Clone(raw)
			p := int(pos) % len(mutated)
			mutated[p] ^= xor
			got := readAll(t, mutated)
			// Frames strictly before the corrupted byte must survive; the
			// reader may or may not produce anything at or past it.
			intact := 0
			for _, b := range bounds {
				if b[1] <= p {
					intact++
				}
			}
			if len(got) < intact {
				t.Fatalf("flip at %d: recovered %d records, want ≥ %d", p, len(got), intact)
			}
			for i := 0; i < intact; i++ {
				if !bytes.Equal(got[i], records[i]) {
					t.Fatalf("flip at %d: record %d corrupted on recovery", p, i)
				}
			}

		case 2: // duplicate one frame at the end
			if len(bounds) == 0 {
				return
			}
			b := bounds[int(pos)%len(bounds)]
			mutated := append(bytes.Clone(raw), raw[b[0]:b[1]]...)
			got := readAll(t, mutated)
			if len(got) != n+1 {
				t.Fatalf("duplicated frame: recovered %d records, want %d", len(got), n+1)
			}
			for i := 0; i < n; i++ {
				if !bytes.Equal(got[i], records[i]) {
					t.Fatalf("duplicated frame: record %d corrupted", i)
				}
			}
		}
	})
}

// TestFuzzSeedsPass runs the seed corpus deterministically so plain `go
// test` exercises the property without -fuzz.
func TestFuzzSeedsPass(t *testing.T) {
	raw, _ := buildJournal([][]byte{[]byte("one"), []byte("two")})
	rd, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"one", "two"} {
		p, err := rd.Next()
		if err != nil || string(p) != want {
			t.Fatalf("Next = %q, %v; want %q", p, err, want)
		}
	}
	if _, err := rd.Next(); err != io.EOF {
		t.Fatalf("end = %v, want io.EOF", err)
	}
}
