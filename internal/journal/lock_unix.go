//go:build unix

package journal

import (
	"errors"
	"fmt"
	"os"
	"syscall"
)

// lockFile takes an exclusive, non-blocking advisory lock on f. The lock
// lives on the open file description: it dies with the process (so a
// SIGKILL'd writer never wedges recovery) and is released by Close. A
// conflicting holder yields ErrLocked, the typed refusal Recover surfaces
// instead of truncating a file another handle is still appending to.
func lockFile(f *os.File) error {
	err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
	if errors.Is(err, syscall.EWOULDBLOCK) || errors.Is(err, syscall.EAGAIN) {
		return fmt.Errorf("%w: %s", ErrLocked, f.Name())
	}
	if err != nil {
		return fmt.Errorf("journal: locking %s: %w", f.Name(), err)
	}
	return nil
}
