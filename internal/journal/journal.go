// Package journal is an append-only, CRC-framed record log used to
// checkpoint long sweeps. A journal file is a fixed 8-byte magic header
// followed by frames of the form
//
//	uint32 LE payload length | uint32 LE CRC-32C(payload) | payload
//
// The format is deliberately dumb: no index, no compaction, no in-place
// mutation. Durability comes from batched fsync (every SyncEvery appends and
// on Close), and crash tolerance from the framing — a process killed
// mid-write leaves a torn final frame that Recover detects and truncates, so
// every fully-written record before it is readable again. Readers stop at
// the first frame whose length or checksum does not validate and never
// panic on arbitrary bytes; everything after a corrupt frame is
// unreachable by construction, which is exactly the prefix-durability
// contract resumable sweeps need.
package journal

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// magic identifies a journal file (and its format version).
const magic = "ANVJNL1\n"

// MaxRecord bounds a single payload. The bound exists so that a corrupted
// length field cannot make a reader allocate gigabytes: any length above it
// is treated as a corrupt frame.
const MaxRecord = 1 << 26

// DefaultSyncEvery is the Writer's fsync batch size when SyncEvery is zero.
const DefaultSyncEvery = 8

// ErrCorrupt marks an unreadable frame: a torn tail, a bad checksum, or an
// implausible length. errors.Is(err, ErrCorrupt) identifies it.
var ErrCorrupt = errors.New("journal: corrupt frame")

// ErrLocked marks a journal whose file another handle holds open for
// writing. Create and Recover take an exclusive advisory lock for the life
// of their Writer, so recovering a live journal fails loudly with this
// error instead of truncating records a concurrent writer is still
// appending. errors.Is(err, ErrLocked) identifies it.
var ErrLocked = errors.New("journal: file locked by another writer")

// castagnoli is the CRC-32C table shared by writers and readers.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const headerLen = len(magic)
const frameHeaderLen = 8 // uint32 length + uint32 crc

// A Writer appends CRC-framed records to a journal file. It is not safe for
// concurrent use; callers that share one across goroutines must serialize
// Append themselves.
type Writer struct {
	// SyncEvery batches fsyncs: the file is fsynced after every SyncEvery
	// appended records, and always on Sync and Close. Zero means
	// DefaultSyncEvery; 1 syncs every record.
	SyncEvery int

	f        *os.File
	scratch  []byte
	unsynced int
}

// Create starts a fresh journal at path, failing if one already exists
// (resuming an existing file goes through Recover instead). The Writer
// holds an exclusive file lock until Close.
func Create(path string) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, err
	}
	if err := lockFile(f); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Write([]byte(magic)); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: writing header: %w", err)
	}
	return &Writer{f: f}, nil
}

// Append frames one record onto the journal. The frame reaches the kernel in
// a single write; it reaches stable storage at the next batched fsync.
func (w *Writer) Append(payload []byte) error {
	if len(payload) > MaxRecord {
		return fmt.Errorf("journal: record of %d bytes exceeds MaxRecord (%d)", len(payload), MaxRecord)
	}
	need := frameHeaderLen + len(payload)
	if cap(w.scratch) < need {
		w.scratch = make([]byte, need)
	}
	frame := w.scratch[:need]
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
	copy(frame[frameHeaderLen:], payload)
	if _, err := w.f.Write(frame); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	w.unsynced++
	batch := w.SyncEvery
	if batch <= 0 {
		batch = DefaultSyncEvery
	}
	if w.unsynced >= batch {
		return w.Sync()
	}
	return nil
}

// Sync flushes every appended record to stable storage.
func (w *Writer) Sync() error {
	if w.unsynced == 0 {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("journal: fsync: %w", err)
	}
	w.unsynced = 0
	return nil
}

// Close syncs outstanding records and closes the file.
func (w *Writer) Close() error {
	err := w.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// A Reader decodes frames from a journal stream. Next returns records in
// order, io.EOF at a clean end, and an ErrCorrupt-wrapped error at the first
// torn or corrupt frame; it never panics on arbitrary input.
type Reader struct {
	r   *bufio.Reader
	off int64 // bytes consumed by the header and fully-validated frames
	err error // sticky terminal state
}

// NewReader validates the magic header and positions the reader at the first
// frame.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	head := make([]byte, headerLen)
	n, err := io.ReadFull(br, head)
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		// A file killed mid-Create carries a prefix of the magic; that is a
		// torn (empty) journal — Recover rewinds it — not a foreign file,
		// which is refused outright.
		if bytes.Equal(head[:n], []byte(magic)[:n]) {
			return nil, fmt.Errorf("%w: torn header", ErrCorrupt)
		}
		return nil, fmt.Errorf("journal: %d-byte file does not start a journal header", n)
	}
	if err != nil {
		return nil, fmt.Errorf("journal: reading header: %w", err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("journal: bad magic %q: not a journal file", head)
	}
	return &Reader{r: br, off: int64(headerLen)}, nil
}

// Next returns the next record's payload. After any non-nil error the reader
// stays terminated and keeps returning that error.
func (rd *Reader) Next() ([]byte, error) {
	if rd.err != nil {
		return nil, rd.err
	}
	var head [frameHeaderLen]byte
	if _, err := io.ReadFull(rd.r, head[:]); err != nil {
		if err == io.EOF {
			rd.err = io.EOF // clean end: EOF exactly on a frame boundary
		} else if err == io.ErrUnexpectedEOF {
			rd.err = fmt.Errorf("%w: torn frame header at offset %d", ErrCorrupt, rd.off)
		} else {
			rd.err = fmt.Errorf("journal: reading frame at offset %d: %w", rd.off, err)
		}
		return nil, rd.err
	}
	length := binary.LittleEndian.Uint32(head[0:4])
	if length > MaxRecord {
		rd.err = fmt.Errorf("%w: implausible record length %d at offset %d", ErrCorrupt, length, rd.off)
		return nil, rd.err
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(rd.r, payload); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			rd.err = fmt.Errorf("%w: torn record at offset %d", ErrCorrupt, rd.off)
		} else {
			rd.err = fmt.Errorf("journal: reading record at offset %d: %w", rd.off, err)
		}
		return nil, rd.err
	}
	if got, want := crc32.Checksum(payload, castagnoli), binary.LittleEndian.Uint32(head[4:8]); got != want {
		rd.err = fmt.Errorf("%w: checksum mismatch at offset %d (%#x != %#x)", ErrCorrupt, rd.off, got, want)
		return nil, rd.err
	}
	rd.off += int64(frameHeaderLen) + int64(length)
	return payload, nil
}

// Offset is the file position just past the last fully-validated frame (or
// past the header before any frame was read). Recover truncates to it.
func (rd *Reader) Offset() int64 { return rd.off }

// Recover opens an existing journal for appending: it reads every valid
// record, truncates any torn or corrupt tail, and returns the records
// alongside a Writer positioned at the new end. An empty (or torn-header)
// file is rewound to a fresh journal with zero records. A file with foreign
// magic is refused. A file whose exclusive lock another Writer still holds
// is refused with ErrLocked before a single byte is read or truncated —
// recovery either owns the file or fails loudly, never shortens live data.
func Recover(path string) ([][]byte, *Writer, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, err
	}
	if err := lockFile(f); err != nil {
		f.Close()
		return nil, nil, err
	}
	rd, err := NewReader(f)
	if err != nil {
		if errors.Is(err, ErrCorrupt) {
			// Torn header: rewind to a fresh journal.
			if err := rewrite(f); err != nil {
				f.Close()
				return nil, nil, err
			}
			return nil, &Writer{f: f}, nil
		}
		f.Close()
		return nil, nil, err
	}
	var records [][]byte
	for {
		payload, err := rd.Next()
		if err == io.EOF {
			break
		}
		if errors.Is(err, ErrCorrupt) {
			break // truncate below; the valid prefix survives
		}
		if err != nil {
			f.Close()
			return nil, nil, err
		}
		records = append(records, payload)
	}
	if err := f.Truncate(rd.Offset()); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: truncating torn tail: %w", err)
	}
	if _, err := f.Seek(rd.Offset(), io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	return records, &Writer{f: f}, nil
}

// rewrite resets a torn-header file to an empty journal.
func rewrite(f *os.File) error {
	if err := f.Truncate(0); err != nil {
		return err
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if _, err := f.Write([]byte(magic)); err != nil {
		return fmt.Errorf("journal: rewriting header: %w", err)
	}
	return nil
}
