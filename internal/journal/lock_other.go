//go:build !unix

package journal

import "os"

// lockFile is a no-op on platforms without flock semantics: single-writer
// discipline is then the caller's responsibility, exactly as it was before
// locking existed. Unix builds get the real exclusion (see lock_unix.go).
func lockFile(*os.File) error { return nil }
