package attack

import (
	"errors"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/machine"
	"repro/internal/vm"
)

// TestTimingEvictionSetWithoutPagemap discovers an eviction set with the
// pagemap interface fully restricted, using nothing but load timing — then
// verifies against the oracle that the surviving members really are
// congruent with the witness.
func TestTimingEvictionSetWithoutPagemap(t *testing.T) {
	m := testMachine(t)
	m.Kernel.Pagemap.Restricted = true // the kernel mitigation is active

	const bufVA, bufMB = uint64(0x7000_0000), uint64(16)
	witness := bufVA + 8<<20 + 3*64
	var found []uint64
	s := machine.NewScript("timing-evset", func(ctx *machine.ScriptCtx) error {
		if err := ctx.Map(bufVA, bufMB<<20); err != nil {
			return err
		}
		ev, err := FindEvictionSetByTiming(ctx, DefaultTimingConfig(), witness,
			SameOffsetPool(witness, bufVA, bufMB<<20))
		if err != nil {
			return err
		}
		found = ev
		return nil
	})
	proc, err := m.Spawn(0, s)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(1 << 44); !errors.Is(err, machine.ErrAllDone) {
		t.Fatal(err)
	}
	if s.Err() != nil {
		t.Fatal(s.Err())
	}
	cfg := cache.SandyBridgeConfig().Levels[2]
	if len(found) < cfg.Ways || len(found) > 4*DefaultTimingConfig().TargetSize {
		t.Fatalf("eviction set size %d, want within [%d, %d]", len(found), cfg.Ways, 4*DefaultTimingConfig().TargetSize)
	}
	// Oracle check: the congruent core must be at least the associativity.
	spec, err := NewCacheSpec(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wPA, err := proc.AS.Translate(witness)
	if err != nil {
		t.Fatal(err)
	}
	congruent := 0
	for _, va := range found {
		pa, err := proc.AS.Translate(va)
		if err != nil {
			t.Fatal(err)
		}
		if spec.Congruent(pa, wPA) {
			congruent++
		}
	}
	if congruent < cfg.Ways {
		t.Errorf("only %d/%d members congruent with the witness; need >= %d ways",
			congruent, len(found), cfg.Ways)
	}
}

// TestTimingHammerFlipsWithoutPagemap is the rowhammer.js-shaped end-to-end
// result: with pagemap restricted AND no CLFLUSH, timing-derived eviction
// sets still hammer DRAM rows to the point of bit flips.
func TestTimingHammerFlipsWithoutPagemap(t *testing.T) {
	m := testMachine(t)
	m.Kernel.Pagemap.Restricted = true

	const bufVA, bufMB = uint64(0x7000_0000), uint64(16)
	// The attacker picks two addresses one row-pitch apart (blind guessing
	// in reality; here aimed so the test can plant the victim in between).
	geom := m.Mem.DRAM.Config().Geometry
	rowPitch := uint64(geom.RowBytes * geom.BanksPerRank * geom.Ranks)
	agg0 := bufVA + 8<<20
	agg1 := agg0 + 2*rowPitch

	llc := cache.SandyBridgeConfig().Levels[2]
	s := TimingHammer("timing-hammer", bufVA, bufMB, agg0, agg1,
		llc.Policy, llc.Ways, DefaultTimingConfig(), 0, nil)
	proc, err := m.Spawn(0, s)
	if err != nil {
		t.Fatal(err)
	}
	// Map the buffer up-front (the script would otherwise do it lazily) so
	// the test can identify the victim row between the aggressors and
	// plant the weak cell before hammering starts.
	if err := proc.AS.Map(bufVA, bufMB<<20); err != nil {
		t.Fatal(err)
	}
	pa0, err := proc.AS.Translate(agg0)
	if err != nil {
		t.Fatal(err)
	}
	c0 := m.Mem.DRAM.Mapper().Map(pa0)
	m.Mem.DRAM.PlantWeakRow(c0.Bank, c0.Row+1, 400_000)

	if err := m.Run(m.Freq.Cycles(192 * time.Millisecond)); err != nil && !errors.Is(err, machine.ErrAllDone) {
		t.Fatal(err)
	}
	if s.Err() != nil {
		t.Fatal(s.Err())
	}
	if m.Mem.DRAM.FlipCount() == 0 {
		t.Error("timing-based hammer produced no flips")
	}
	if m.Cores[0].Stats.Flushes != 0 {
		t.Error("timing hammer used CLFLUSH")
	}
}

// TestANVILStopsTimingHammer closes the loop: the pagemap-free,
// CLFLUSH-free attack is still caught by the detector.
func TestANVILStopsTimingHammer(t *testing.T) {
	// The anvil package cannot be imported here (cycle); this test lives in
	// internal/anvil. Kept as a signpost.
	t.Skip("see internal/anvil TestDetectsTimingHammer")
}

func TestSameOffsetPool(t *testing.T) {
	w := uint64(0x1000_0000) + 5*64
	pool := SameOffsetPool(w, 0x1000_0000, 8*vm.PageSize)
	if len(pool) != 7 {
		t.Fatalf("pool = %d, want 7 (8 pages minus the witness)", len(pool))
	}
	for _, va := range pool {
		if va%vm.PageSize != w%vm.PageSize {
			t.Errorf("candidate %#x offset differs from witness", va)
		}
		if va == w {
			t.Error("witness included in pool")
		}
	}
}

func TestFindEvictionSetRejectsBadConfig(t *testing.T) {
	m := testMachine(t)
	s := machine.NewScript("bad", func(ctx *machine.ScriptCtx) error {
		_, err := FindEvictionSetByTiming(ctx, TimingConfig{}, 0, nil)
		if err == nil {
			return errors.New("bad config accepted")
		}
		return nil
	})
	if _, err := m.Spawn(0, s); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(1 << 40); !errors.Is(err, machine.ErrAllDone) {
		t.Fatal(err)
	}
	if s.Err() != nil {
		t.Fatal(s.Err())
	}
}
