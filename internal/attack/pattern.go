package attack

import (
	"fmt"

	"repro/internal/cache"
)

// Pattern is the replacement-policy-aware access sequence of the
// CLFLUSH-free attack: one cyclic iteration over a 13-address eviction set
// that, in steady state, misses the last-level cache on the aggressor
// address every iteration (plus exactly one conflict address, which closes
// the aggressor's DRAM row so the next iteration re-activates it).
type Pattern struct {
	// Addrs holds the ways+1 virtual addresses; Seq indexes into it.
	Addrs []uint64
	// Seq is one iteration of the access sequence.
	Seq []int
	// AggressorSlot is the index in Addrs holding the aggressor.
	AggressorSlot int
	// MissesPerIteration is the steady-state LLC miss count per iteration.
	MissesPerIteration int
}

// Iteration returns the virtual addresses of one iteration, in order.
func (p Pattern) Iteration() []uint64 {
	out := make([]uint64, len(p.Seq))
	for i, id := range p.Seq {
		out[i] = p.Addrs[id]
	}
	return out
}

// templates returns candidate access sequences over n = ways+1 address
// slots, cheapest first. The authors designed their sequence (Fig. 1b)
// against replacement-policy simulators; the builder does the same search
// mechanically: it tries each template on a simulated set and keeps the
// first whose steady state misses on a stable pair of slots.
func templates(ways int) [][]int {
	n := ways + 1
	cyclic := make([]int, n)
	for i := range cyclic {
		cyclic[i] = i
	}
	// The paper's Figure 1b shape, generalised from 12 ways:
	// A, X1..X(w-2), X(w-1), X1..X(w-3), Xw
	var fig1b []int
	fig1b = append(fig1b, 0)
	for i := 1; i <= ways-2; i++ {
		fig1b = append(fig1b, i)
	}
	fig1b = append(fig1b, ways-1)
	for i := 1; i <= ways-3; i++ {
		fig1b = append(fig1b, i)
	}
	fig1b = append(fig1b, ways)
	return [][]int{cyclic, fig1b}
}

// setSim simulates one fully-associative-set's worth of tag state plus a
// replacement policy, for abstract address ids.
type setSim struct {
	policy   cache.Policy
	occupant []int
	where    map[int]int
}

func newSetSim(kind cache.PolicyKind, ways int) *setSim {
	s := &setSim{
		policy:   cache.MustPolicy(kind, ways, nil),
		occupant: make([]int, ways),
		where:    make(map[int]int),
	}
	for i := range s.occupant {
		s.occupant[i] = -1
	}
	return s
}

// access touches the id, returning whether it missed.
func (s *setSim) access(id int) bool {
	if w, ok := s.where[id]; ok {
		s.policy.Touch(w)
		return false
	}
	way := -1
	for i, o := range s.occupant {
		if o == -1 {
			way = i
			break
		}
	}
	if way == -1 {
		way = s.policy.Victim()
		delete(s.where, s.occupant[way])
	}
	s.occupant[way] = id
	s.where[id] = way
	s.policy.Touch(way)
	return true
}

// ReplayOnPolicy replays an id sequence through a simulated set from cold
// state and returns the per-access miss trace. The policy-inference
// harness compares such traces against hardware-observed ones.
func ReplayOnPolicy(kind cache.PolicyKind, ways int, seq []int) []bool {
	s := newSetSim(kind, ways)
	out := make([]bool, len(seq))
	for i, id := range seq {
		out[i] = s.access(id)
	}
	return out
}

// steadyState runs the template to convergence and reports, per slot, how
// many of the measured iterations it missed in, plus total misses.
func steadyState(kind cache.PolicyKind, ways int, seq []int) (missIters map[int]int, perIter int, stable bool) {
	const warmup, measure = 8, 6
	s := newSetSim(kind, ways)
	for i := 0; i < warmup; i++ {
		for _, id := range seq {
			s.access(id)
		}
	}
	missIters = make(map[int]int)
	counts := make([]int, measure)
	for i := 0; i < measure; i++ {
		seen := map[int]bool{}
		for _, id := range seq {
			if s.access(id) {
				counts[i]++
				seen[id] = true
			}
		}
		for id := range seen {
			missIters[id]++
		}
	}
	perIter = counts[0]
	for _, c := range counts {
		if c != perIter {
			return missIters, perIter, false
		}
	}
	return missIters, perIter, true
}

// BuildPattern searches the template family for the cheapest access
// sequence on the given policy whose steady state (a) misses on a stable
// set of slots every iteration and (b) allows the aggressor to occupy one
// of those always-missing slots. The eviction set's conflict addresses
// fill the remaining slots.
func BuildPattern(es EvictionSet, kind cache.PolicyKind, ways int) (Pattern, error) {
	if len(es.Conflicts) < ways {
		return Pattern{}, fmt.Errorf("attack: need %d conflict addresses, have %d", ways, len(es.Conflicts))
	}
	const measure = 6
	type candidate struct {
		seq    []int
		slot   int
		misses int
		hits   int
	}
	var best *candidate
	for _, seq := range templates(ways) {
		missIters, perIter, stable := steadyState(kind, ways, seq)
		if !stable || perIter == 0 {
			continue
		}
		// Slots that miss every measured iteration can host the aggressor.
		// Take the smallest qualifying id so the choice does not depend on
		// map iteration order.
		slot := -1
		for id, n := range missIters {
			if n == measure && (slot < 0 || id < slot) {
				slot = id
			}
		}
		if slot < 0 {
			continue
		}
		c := &candidate{seq: seq, slot: slot, misses: perIter, hits: len(seq) - perIter}
		// Cheapest = fewest total accesses, then fewest misses.
		if best == nil || len(c.seq) < len(best.seq) ||
			(len(c.seq) == len(best.seq) && c.misses < best.misses) {
			best = c
		}
	}
	if best == nil {
		return Pattern{}, fmt.Errorf("attack: no stable aggressor-missing pattern found for %s/%d-way", kind, ways)
	}
	p := Pattern{
		Seq:                best.seq,
		AggressorSlot:      best.slot,
		MissesPerIteration: best.misses,
		Addrs:              make([]uint64, ways+1),
	}
	ci := 0
	for id := 0; id <= ways; id++ {
		if id == best.slot {
			p.Addrs[id] = es.Aggressor
			continue
		}
		p.Addrs[id] = es.Conflicts[ci]
		ci++
	}
	return p, nil
}
