// Package attack implements the paper's rowhammer attacks as programs for
// the simulated machine:
//
//   - single- and double-sided CLFLUSH hammering (§2.1, Table 1),
//   - the first CLFLUSH-free double-sided attack (§2.2, Figure 1b), built
//     from pagemap-derived eviction sets and a replacement-policy-aware
//     access pattern,
//   - the replacement-policy inference harness the authors used to identify
//     Sandy Bridge's Bit-PLRU policy (§2.2).
//
// The attacks only use the interfaces a real attacker has: mapped memory,
// /proc/pagemap, knowledge of the (reverse-engineered) cache and DRAM
// address maps, loads/stores, and optionally CLFLUSH.
package attack

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/machine"
	"repro/internal/vm"
)

// CacheSpec is the attacker's model of the last-level cache: enough to
// compute set/slice congruence. It mirrors what the paper's authors derived
// from the literature and their own probing ("bits 6 to 16 of the physical
// addresses are used to map to last-level cache sets", plus the slice hash).
type CacheSpec struct {
	level *cache.Level
	ways  int
}

// NewCacheSpec builds the attacker's cache model from the (known) LLC
// configuration.
func NewCacheSpec(cfg cache.LevelConfig) (*CacheSpec, error) {
	l, err := cache.NewLevel(cfg, nil)
	if err != nil {
		return nil, err
	}
	return &CacheSpec{level: l, ways: cfg.Ways}, nil
}

// Ways reports the LLC associativity.
func (s *CacheSpec) Ways() int { return s.ways }

// Congruent reports whether two physical addresses compete for the same LLC
// set and slice.
func (s *CacheSpec) Congruent(a, b uint64) bool { return s.level.Congruent(a, b) }

// EvictionSet is the aggressor address plus the congruent conflict
// addresses used to evict it without CLFLUSH.
type EvictionSet struct {
	Aggressor uint64   // virtual address of the aggressor
	Conflicts []uint64 // virtual addresses congruent with the aggressor
}

// translator resolves the attacker's virtual addresses to physical ones.
type translator func(va uint64) (uint64, error)

// buildEvictionSet scans the buffer [bufVA, bufVA+bufLen) for addresses
// congruent with aggVA, excluding any whose DRAM row lies within
// `exclusion` rows of a row in avoidRows (so eviction traffic does not
// accidentally refresh — or hammer — the victim). It returns `count`
// conflict addresses.
func buildEvictionSet(spec *CacheSpec, mapper dram.Mapper, xlate translator,
	aggVA, bufVA, bufLen uint64, count int, avoidRows []dram.Coord, exclusion int) (EvictionSet, error) {

	aggPA, err := xlate(aggVA)
	if err != nil {
		return EvictionSet{}, fmt.Errorf("attack: translating aggressor: %w", err)
	}
	es := EvictionSet{Aggressor: aggVA}
	// Candidates repeat with the set-index period; stepping by lines would
	// be wasteful. The set index covers bits 6..16, so congruent candidates
	// are 2^17 apart at most — but slice hashing means we must test each.
	const step = uint64(cache.LineSize)
	for va := bufVA; va+step <= bufVA+bufLen && len(es.Conflicts) < count; va += step {
		if va == aggVA {
			continue
		}
		pa, err := xlate(va)
		if err != nil {
			return EvictionSet{}, fmt.Errorf("attack: pagemap scan: %w", err)
		}
		if pa == aggPA || !spec.Congruent(pa, aggPA) {
			continue
		}
		c := mapper.Map(pa)
		if tooClose(c, avoidRows, exclusion) {
			continue
		}
		es.Conflicts = append(es.Conflicts, va)
	}
	if len(es.Conflicts) < count {
		return EvictionSet{}, fmt.Errorf("attack: found only %d/%d conflict addresses for %#x; buffer too small",
			len(es.Conflicts), count, aggVA)
	}
	return es, nil
}

func tooClose(c dram.Coord, avoid []dram.Coord, exclusion int) bool {
	for _, a := range avoid {
		if c.Bank != a.Bank {
			continue
		}
		d := c.Row - a.Row
		if d < 0 {
			d = -d
		}
		if d <= exclusion {
			return true
		}
	}
	return false
}

// mapBuffer maps the attack buffer and returns a translator using pagemap,
// mirroring the real implementation ("uses the Linux /proc/pagemap utility
// to convert virtual addresses to physical addresses"). A restricted
// pagemap makes eviction-set construction fail — the mitigation the kernel
// shipped, which the paper notes still leaves other attack avenues.
func mapBuffer(p *machine.Proc, baseVA, bytes uint64, contiguous bool) (translator, error) {
	// Idempotent: re-initialising an attack against a buffer the process
	// already mapped (retargeting, templating sweeps) reuses the mapping.
	if !p.AS.Mapped(baseVA) {
		var err error
		if contiguous {
			err = p.AS.MapContiguous(baseVA, bytes)
		} else {
			err = p.AS.Map(baseVA, bytes)
		}
		if err != nil {
			return nil, err
		}
	}
	pm := p.Pagemap()
	as := p.AS
	// Cache pagemap lookups per page: the real attack reads each pagemap
	// entry once.
	pageCache := make(map[uint64]uint64)
	return func(va uint64) (uint64, error) {
		page := va &^ (vm.PageSize - 1)
		base, ok := pageCache[page]
		if !ok {
			var err error
			base, err = pm.Query(as, page)
			if err != nil {
				return 0, err
			}
			pageCache[page] = base
		}
		return base + va - page, nil
	}, nil
}
