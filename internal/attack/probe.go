package attack

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/cache"
	"repro/internal/machine"
	"repro/internal/pmu"
	"repro/internal/sim"
)

// PolicyProbe reproduces the replacement-policy identification experiment of
// §2.2: "we did this by generating a high miss-rate pattern that cyclically
// accesses the 13 addresses in the eviction set, and using performance
// counters (particularly the last-level cache miss counter) to determine
// whether each access was a cache hit or a cache miss. Then we correlate
// the performance counter results with results from different cache
// replacement policy simulators that we built."
//
// The probe runs as a program on the machine, reading the LLC-miss counter
// around each access exactly as the authors did, and records the observed
// hit/miss trace together with the abstract id sequence it replayed.
type PolicyProbe struct {
	opts Options
	pmu  *pmu.PMU // the attacker's perf-counter handle

	seq    []int // id sequence (cyclic over the eviction set)
	addrs  []uint64
	rounds int

	pos      int
	lastMiss uint64
	observed []bool
	done     bool
}

// NewPolicyProbe builds the probe. It needs the attacker's perf-counter
// handle (user-space access to the LLC miss counter) and the usual buffer
// and mapping options. rounds is how many cyclic passes to record.
func NewPolicyProbe(opts Options, counters *pmu.PMU, rounds int) (*PolicyProbe, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if counters == nil {
		return nil, fmt.Errorf("attack: probe needs a perf-counter handle")
	}
	if opts.LLC.SizeKB == 0 {
		return nil, fmt.Errorf("attack: probe needs the LLC model")
	}
	if rounds <= 0 {
		rounds = 40
	}
	return &PolicyProbe{opts: opts, pmu: counters, rounds: rounds}, nil
}

// Name implements machine.Program.
func (p *PolicyProbe) Name() string { return "policy-probe" }

// Init implements machine.Program: builds one eviction set of ways+1
// congruent addresses and lays out the cyclic probe sequence.
func (p *PolicyProbe) Init(proc *machine.Proc) error {
	bufLen := uint64(p.opts.BufferMB) << 20
	xlate, err := mapBuffer(proc, attackBufBase, bufLen, p.opts.Contiguous)
	if err != nil {
		return err
	}
	spec, err := NewCacheSpec(p.opts.LLC)
	if err != nil {
		return err
	}
	base := attackBufBase + bufLen/2
	es, err := buildEvictionSet(spec, p.opts.Mapper, xlate, base, attackBufBase, bufLen,
		spec.Ways(), nil, 0)
	if err != nil {
		return err
	}
	p.addrs = append([]uint64{es.Aggressor}, es.Conflicts...)
	n := len(p.addrs)
	for r := 0; r < p.rounds; r++ {
		for i := 0; i < n; i++ {
			p.seq = append(p.seq, i)
		}
	}
	return nil
}

// Next implements machine.Program: one load per sequence slot, reading the
// miss counter between accesses to classify the previous access.
func (p *PolicyProbe) Next() machine.Op {
	// Classify the access issued in the previous step.
	if p.pos > 0 {
		miss := p.pmu.Read(pmu.EvLLCMiss)
		p.observed = append(p.observed, miss > p.lastMiss)
		p.lastMiss = miss
	} else {
		p.lastMiss = p.pmu.Read(pmu.EvLLCMiss)
	}
	if p.pos >= len(p.seq) {
		p.done = true
		return machine.Op{Kind: machine.OpDone}
	}
	va := p.addrs[p.seq[p.pos]]
	p.pos++
	return machine.Op{Kind: machine.OpLoad, VA: va}
}

// Observed returns the recorded hit/miss trace (true = miss) and the id
// sequence it corresponds to.
func (p *PolicyProbe) Observed() (trace []bool, seq []int) {
	return p.observed, p.seq[:len(p.observed)]
}

// PolicyScore is one candidate policy's agreement with the observation.
type PolicyScore struct {
	Policy cache.PolicyKind
	Match  float64 // fraction of accesses classified identically
}

// InferPolicy replays the observed sequence through each candidate policy
// simulator and ranks the candidates by agreement with the observed
// hit/miss trace, best first. The warm-up prefix (first two passes over the
// set) is excluded: cold misses are policy-independent.
func InferPolicy(observed []bool, seq []int, ways int, candidates []cache.PolicyKind) []PolicyScore {
	n := len(observed)
	if len(seq) < n {
		n = len(seq)
	}
	skip := 2 * (ways + 1)
	if skip >= n {
		skip = 0
	}
	scores := make([]PolicyScore, 0, len(candidates))
	for _, kind := range candidates {
		sim := ReplayOnPolicy(kind, ways, seq[:n])
		scores = append(scores, PolicyScore{
			Policy: kind,
			Match:  matchFrom(observed[:n], sim, skip),
		})
	}
	sort.SliceStable(scores, func(i, j int) bool { return scores[i].Match > scores[j].Match })
	return scores
}

func matchFrom(a, b []bool, skip int) float64 {
	if skip >= len(a) {
		return 0
	}
	match := 0
	for i := skip; i < len(a); i++ {
		if a[i] == b[i] {
			match++
		}
	}
	return float64(match) / float64(len(a)-skip)
}

// RunInference is the end-to-end §2.2 experiment: run the probe on a
// machine whose LLC uses an unknown policy, then rank the candidate
// simulators. It returns the ranked scores.
func RunInference(m *machine.Machine, opts Options, rounds int, candidates []cache.PolicyKind) ([]PolicyScore, error) {
	probe, err := NewPolicyProbe(opts, m.Mem.PMU, rounds)
	if err != nil {
		return nil, err
	}
	if _, err := m.Spawn(0, probe); err != nil {
		return nil, err
	}
	if err := m.Run(sim.Cycles(1) << 62); err != nil && !errors.Is(err, machine.ErrAllDone) {
		return nil, err
	}
	observed, seq := probe.Observed()
	return InferPolicy(observed, seq, opts.LLC.Ways, candidates), nil
}

var _ machine.Program = (*PolicyProbe)(nil)
