package attack

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/machine"
	"repro/internal/sim"
)

// Target designates the victim row the attack tries to flip. The aggressor
// rows are its immediate neighbours (VictimRow±1), per double-sided
// rowhammering; single-sided attacks hammer only VictimRow+1.
type Target struct {
	Bank      int
	VictimRow int
}

// Options configures a hammer program.
type Options struct {
	// Mapper is the attacker's reverse-engineered physical-to-DRAM map.
	Mapper dram.Mapper
	// LLC is the attacker's model of the last-level cache (CLFLUSH-free
	// attack only).
	LLC cache.LevelConfig
	// Target selects the victim row. Ignored when AutoTarget is set.
	Target Target
	// AutoTarget lets the attack pick a victim row from the middle of its
	// own buffer (the way real attacks pick victims from memory they own,
	// then scan for flips).
	AutoTarget bool
	// BufferMB sizes the attack buffer; it must span the target rows.
	BufferMB int
	// Contiguous requests physically contiguous buffer pages (transparent
	// huge pages); otherwise the attack relies purely on pagemap.
	Contiguous bool
	// ExtraDelay inserts compute cycles after each hammer access. Zero for
	// the fastest attack; large values model the "spread out fewer
	// activations across a refresh period" evasion of §4.5.
	ExtraDelay sim.Cycles
	// MaxIterations stops the attack after this many hammer iterations
	// (0 = run forever).
	MaxIterations uint64
}

func (o Options) validate() error {
	if o.Mapper == nil {
		return fmt.Errorf("attack: Options.Mapper is required")
	}
	if o.BufferMB <= 0 {
		return fmt.Errorf("attack: BufferMB must be positive")
	}
	return nil
}

const attackBufBase = uint64(0x7000_0000)

// hammerCore holds state shared by the three attack programs. Progress is a
// single committed-operation counter; iterations and aggressor accesses are
// derived from it, so the per-op and batched paths share one source of
// truth and can never drift.
type hammerCore struct {
	opts       Options
	name       string
	target     Target
	ops        []machine.Op // one iteration
	unrolled   []machine.Op // whole iterations repeated, for contiguous batch views
	execOps    uint64       // operations committed (served by Next or Advance)
	aggPerIter uint64
}

func (h *hammerCore) Name() string { return h.name }

// Victim reports the row the attack is hammering around (available after
// Init; with AutoTarget it is chosen from the attack's own buffer).
func (h *hammerCore) Victim() Target { return h.target }

// resolveTarget applies AutoTarget using the middle of the mapped buffer.
func (h *hammerCore) resolveTarget(xlate translator, bufVA, bufLen uint64) error {
	if !h.opts.AutoTarget {
		h.target = h.opts.Target
		return nil
	}
	pa, err := xlate(bufVA + bufLen/2)
	if err != nil {
		return err
	}
	c := h.opts.Mapper.Map(pa)
	h.target = Target{Bank: c.Bank, VictimRow: c.Row}
	return nil
}

// AggressorAccesses reports how many DRAM-row accesses have been issued to
// the rows adjacent to the victim — the quantity Table 1 reports.
func (h *hammerCore) AggressorAccesses() uint64 { return h.Iterations() * h.aggPerIter }

// Iterations reports completed hammer iterations.
func (h *hammerCore) Iterations() uint64 {
	if len(h.ops) == 0 {
		return 0
	}
	return h.execOps / uint64(len(h.ops))
}

// done reports whether the iteration budget is exhausted.
func (h *hammerCore) done() bool {
	return h.opts.MaxIterations > 0 && h.Iterations() >= h.opts.MaxIterations
}

func (h *hammerCore) Next() machine.Op {
	if h.done() {
		return machine.Op{Kind: machine.OpDone}
	}
	op := h.ops[h.execOps%uint64(len(h.ops))]
	h.execOps++
	return op
}

// doneView is the terminal batch view shared by all hammer programs.
var doneView = [1]machine.Op{{Kind: machine.OpDone}}

// NextRun implements machine.BatchProgram: a contiguous window of the
// unrolled iteration ring starting at the current phase, capped by the
// iteration budget. Nothing is committed until Advance.
func (h *hammerCore) NextRun(max int) []machine.Op {
	if h.done() {
		return doneView[:]
	}
	ringLen := uint64(len(h.unrolled))
	start := h.execOps % ringLen
	end := start + uint64(max)
	if end > ringLen {
		end = ringLen
	}
	if h.opts.MaxIterations > 0 {
		opsLen := uint64(len(h.ops))
		// Only price the budget when it can bite within one ring: the
		// multiplication below then cannot overflow.
		if itersLeft := h.opts.MaxIterations - h.execOps/opsLen; itersLeft <= ringLen/opsLen {
			if rem := itersLeft*opsLen - h.execOps%opsLen; start+rem < end {
				end = start + rem
			}
		}
	}
	return h.unrolled[start:end]
}

// Advance implements machine.BatchProgram.
func (h *hammerCore) Advance(n int) { h.execOps += uint64(n) }

// seal pre-unrolls the iteration into a ring of whole iterations so NextRun
// serves long contiguous views regardless of the iteration length. Called at
// the end of every attack Init.
func (h *hammerCore) seal() {
	iterLen := len(h.ops)
	copies := (machine.DefaultBatchCap + iterLen - 1) / iterLen
	if copies < 2 {
		copies = 2
	}
	h.unrolled = make([]machine.Op, 0, copies*iterLen)
	for i := 0; i < copies; i++ {
		h.unrolled = append(h.unrolled, h.ops...)
	}
}

// DoubleSidedFlush is the classic CLFLUSH-based double-sided rowhammer
// (Fig. 1a): alternately load and flush addresses in the two rows adjacent
// to the victim.
type DoubleSidedFlush struct {
	hammerCore
}

// NewDoubleSidedFlush builds the attack program.
func NewDoubleSidedFlush(opts Options) (*DoubleSidedFlush, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	return &DoubleSidedFlush{hammerCore{opts: opts, name: "clflush-hammer"}}, nil
}

// Init implements machine.Program.
func (a *DoubleSidedFlush) Init(p *machine.Proc) error {
	bufLen := uint64(a.opts.BufferMB) << 20
	xlate, err := mapBuffer(p, attackBufBase, bufLen, a.opts.Contiguous)
	if err != nil {
		return err
	}
	if err := a.resolveTarget(xlate, attackBufBase, bufLen); err != nil {
		return err
	}
	t := a.target
	va0, err := findVAInRowCol(a.opts.Mapper, xlate, attackBufBase, bufLen, t.Bank, t.VictimRow-1, -1)
	if err != nil {
		return err
	}
	va1, err := findVAInRowCol(a.opts.Mapper, xlate, attackBufBase, bufLen, t.Bank, t.VictimRow+1, -1)
	if err != nil {
		return err
	}
	a.ops = []machine.Op{
		{Kind: machine.OpLoad, VA: va0},
		{Kind: machine.OpFlush, VA: va0},
		{Kind: machine.OpLoad, VA: va1},
		{Kind: machine.OpFlush, VA: va1},
	}
	if a.opts.ExtraDelay > 0 {
		a.ops = append(a.ops, machine.Op{Kind: machine.OpCompute, Cycles: a.opts.ExtraDelay})
	}
	a.aggPerIter = 2
	a.seal()
	return nil
}

// SingleSidedFlush is single-sided CLFLUSH rowhammering: hammer the row
// above the victim, using a far row in the same bank to close it between
// accesses (the role random addresses played in the original exploits).
type SingleSidedFlush struct {
	hammerCore
}

// NewSingleSidedFlush builds the attack program.
func NewSingleSidedFlush(opts Options) (*SingleSidedFlush, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	return &SingleSidedFlush{hammerCore{opts: opts, name: "clflush-hammer-1s"}}, nil
}

// Init implements machine.Program.
func (a *SingleSidedFlush) Init(p *machine.Proc) error {
	bufLen := uint64(a.opts.BufferMB) << 20
	xlate, err := mapBuffer(p, attackBufBase, bufLen, a.opts.Contiguous)
	if err != nil {
		return err
	}
	if err := a.resolveTarget(xlate, attackBufBase, bufLen); err != nil {
		return err
	}
	t := a.target
	agg, err := findVAInRowCol(a.opts.Mapper, xlate, attackBufBase, bufLen, t.Bank, t.VictimRow+1, -1)
	if err != nil {
		return err
	}
	// A far row in the same bank closes the aggressor row between accesses.
	far, err := findVAInRowCol(a.opts.Mapper, xlate, attackBufBase, bufLen, t.Bank, t.VictimRow+40, -1)
	if err != nil {
		return err
	}
	a.ops = []machine.Op{
		{Kind: machine.OpLoad, VA: agg},
		{Kind: machine.OpFlush, VA: agg},
		{Kind: machine.OpLoad, VA: far},
		{Kind: machine.OpFlush, VA: far},
	}
	if a.opts.ExtraDelay > 0 {
		a.ops = append(a.ops, machine.Op{Kind: machine.OpCompute, Cycles: a.opts.ExtraDelay})
	}
	a.aggPerIter = 1
	a.seal()
	return nil
}

// ClflushFree is the paper's first-of-its-kind CLFLUSH-free double-sided
// rowhammer (§2.2, Fig. 1b): it evicts the aggressors from the inclusive
// LLC by walking replacement-policy-aware eviction-set patterns, so every
// access to the two aggressor rows reaches DRAM using nothing but loads.
type ClflushFree struct {
	hammerCore
	patX, patY Pattern
}

// NewClflushFree builds the attack program.
func NewClflushFree(opts Options) (*ClflushFree, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if opts.LLC.SizeKB == 0 {
		return nil, fmt.Errorf("attack: CLFLUSH-free attack needs the LLC model (Options.LLC)")
	}
	return &ClflushFree{hammerCore: hammerCore{opts: opts, name: "clflush-free-hammer"}}, nil
}

// Patterns returns the two steady-state access patterns (for inspection
// and tests) once Init has run.
func (a *ClflushFree) Patterns() (x, y Pattern) { return a.patX, a.patY }

// Init implements machine.Program: it builds the eviction sets via pagemap
// and derives the miss-controlled access patterns.
func (a *ClflushFree) Init(p *machine.Proc) error {
	bufLen := uint64(a.opts.BufferMB) << 20
	xlate, err := mapBuffer(p, attackBufBase, bufLen, a.opts.Contiguous)
	if err != nil {
		return err
	}
	spec, err := NewCacheSpec(a.opts.LLC)
	if err != nil {
		return err
	}
	if err := a.resolveTarget(xlate, attackBufBase, bufLen); err != nil {
		return err
	}
	t := a.target
	// Aggressors in different LLC sets so the two eviction patterns do not
	// interfere.
	agg0, err := findVAInRowCol(a.opts.Mapper, xlate, attackBufBase, bufLen, t.Bank, t.VictimRow-1, -1)
	if err != nil {
		return err
	}
	agg0PA, err := xlate(agg0)
	if err != nil {
		return err
	}
	agg1, err := findVAInRowOtherSet(a.opts.Mapper, xlate, spec, attackBufBase, bufLen, t.Bank, t.VictimRow+1, agg0PA)
	if err != nil {
		return err
	}
	// Keep eviction traffic away from the victim neighbourhood: a conflict
	// address in the victim row would refresh it on every iteration.
	avoid := []dram.Coord{
		{Bank: t.Bank, Row: t.VictimRow},
		{Bank: t.Bank, Row: t.VictimRow - 1},
		{Bank: t.Bank, Row: t.VictimRow + 1},
	}
	const exclusion = 2
	esX, err := buildEvictionSet(spec, a.opts.Mapper, xlate, agg0, attackBufBase, bufLen, spec.Ways(), avoid, exclusion)
	if err != nil {
		return err
	}
	esY, err := buildEvictionSet(spec, a.opts.Mapper, xlate, agg1, attackBufBase, bufLen, spec.Ways(), avoid, exclusion)
	if err != nil {
		return err
	}
	a.patX, err = BuildPattern(esX, a.opts.LLC.Policy, spec.Ways())
	if err != nil {
		return err
	}
	a.patY, err = BuildPattern(esY, a.opts.LLC.Policy, spec.Ways())
	if err != nil {
		return err
	}
	for _, va := range a.patX.Iteration() {
		a.ops = append(a.ops, machine.Op{Kind: machine.OpLoad, VA: va})
	}
	for _, va := range a.patY.Iteration() {
		a.ops = append(a.ops, machine.Op{Kind: machine.OpLoad, VA: va})
	}
	if a.opts.ExtraDelay > 0 {
		a.ops = append(a.ops, machine.Op{Kind: machine.OpCompute, Cycles: a.opts.ExtraDelay})
	}
	a.aggPerIter = 2
	a.seal()
	return nil
}

// findVAInRowCol scans the buffer for a virtual address whose physical
// address decodes to the given bank and row, at the given column (col < 0
// accepts any column — needed when scattered allocation gives the attacker
// only part of a row).
func findVAInRowCol(mapper dram.Mapper, xlate translator, bufVA, bufLen uint64, bank, row, col int) (uint64, error) {
	for va := bufVA; va+cache.LineSize <= bufVA+bufLen; va += cache.LineSize {
		pa, err := xlate(va)
		if err != nil {
			return 0, err
		}
		c := mapper.Map(pa)
		if c.Bank == bank && c.Row == row && (col < 0 || c.Col == col) {
			return va, nil
		}
	}
	return 0, fmt.Errorf("attack: no address at bank %d row %d col %d within the buffer", bank, row, col)
}

var (
	_ machine.BatchProgram = (*DoubleSidedFlush)(nil)
	_ machine.BatchProgram = (*SingleSidedFlush)(nil)
	_ machine.BatchProgram = (*ClflushFree)(nil)
)

// findVAInRowOtherSet scans the buffer for an address in (bank,row) that is
// NOT congruent with avoidPA, so the two aggressors get disjoint eviction
// patterns.
func findVAInRowOtherSet(mapper dram.Mapper, xlate translator, spec *CacheSpec,
	bufVA, bufLen uint64, bank, row int, avoidPA uint64) (uint64, error) {
	for va := bufVA; va+cache.LineSize <= bufVA+bufLen; va += cache.LineSize {
		pa, err := xlate(va)
		if err != nil {
			return 0, err
		}
		c := mapper.Map(pa)
		if c.Bank == bank && c.Row == row && !spec.Congruent(pa, avoidPA) {
			return va, nil
		}
	}
	return 0, fmt.Errorf("attack: no non-congruent address in bank %d row %d within the buffer", bank, row)
}
