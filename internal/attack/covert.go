package attack

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/vm"
)

// This file implements the side-channel corollary of §2.2: "the technique
// used in the CLFLUSH-free rowhammering attack can be used in other attacks
// that need to flush the cache at specific addresses. For example the
// Flush+Reload cache side-channel attack relies on the CLFLUSH instruction.
// Our CLFLUSH-free cache flushing method can extend this attack to
// situations where the CLFLUSH instruction is not available."
//
// CovertSender and CovertReceiver build an Evict+Reload covert channel over
// a shared read-only page: the receiver evicts the probe line with an
// eviction set (no CLFLUSH anywhere), waits out the slot, then reloads the
// line and classifies the sender's bit from the measured latency.

// CovertConfig parameterises the channel.
type CovertConfig struct {
	// SharedFrame is the physical frame of the shared page (a shared
	// library page in the real attack); the harness allocates it and both
	// processes map it.
	SharedFrame uint64
	// SharedVA is where each process maps the shared page.
	SharedVA uint64
	// SlotCycles is the length of one bit slot.
	SlotCycles sim.Cycles
	// HitThreshold divides cache-hit from DRAM latencies.
	HitThreshold sim.Cycles
	// EvictLines is how many congruent lines the receiver walks to evict
	// the probe line (comfortably above the associativity).
	EvictLines int
	// Mapper / LLC / BufferMB / Contiguous configure the receiver's
	// eviction-set construction, as in Options.
	Options Options
}

// DefaultCovertConfig returns a working configuration for the standard
// machine. The harness must fill in SharedFrame.
func DefaultCovertConfig(opts Options) CovertConfig {
	return CovertConfig{
		SharedVA:     0x2000_0000,
		SlotCycles:   120_000,
		HitThreshold: 60,
		EvictLines:   24,
		Options:      opts,
	}
}

func (c CovertConfig) validate() error {
	if c.SlotCycles == 0 || c.HitThreshold == 0 || c.EvictLines <= 0 {
		return fmt.Errorf("attack: covert config incomplete: %+v", c)
	}
	return c.Options.validate()
}

// CovertSender transmits one bit per slot: touching the shared line for a
// 1, staying idle for a 0.
type CovertSender struct {
	cfg    CovertConfig
	bits   []bool
	proc   *machine.Proc
	toggle bool
}

// NewCovertSender builds the sender for the given bit string.
func NewCovertSender(cfg CovertConfig, bits []bool) (*CovertSender, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(bits) == 0 {
		return nil, fmt.Errorf("attack: empty covert message")
	}
	return &CovertSender{cfg: cfg, bits: bits}, nil
}

// Name implements machine.Program.
func (s *CovertSender) Name() string { return "covert-sender" }

// Init implements machine.Program.
func (s *CovertSender) Init(p *machine.Proc) error {
	s.proc = p
	return p.AS.MapFrames(s.cfg.SharedVA, []uint64{s.cfg.SharedFrame})
}

// Next implements machine.Program.
func (s *CovertSender) Next() machine.Op {
	slot64 := s.proc.Time() / s.cfg.SlotCycles
	if slot64 >= sim.Cycles(len(s.bits)) {
		return machine.Op{Kind: machine.OpDone}
	}
	slot := int(slot64) //lint:allow tickconv bounded by len(s.bits) just above
	if s.bits[slot] {
		// Keep the line warm throughout the slot (touch, pause, touch...).
		s.toggle = !s.toggle
		if s.toggle {
			return machine.Op{Kind: machine.OpLoad, VA: s.cfg.SharedVA}
		}
		return machine.Op{Kind: machine.OpCompute, Cycles: 300}
	}
	return machine.Op{Kind: machine.OpCompute, Cycles: 400}
}

// CovertReceiver evicts and reloads the shared line once per slot.
type CovertReceiver struct {
	cfg   CovertConfig
	slots int
	proc  *machine.Proc

	evict      []uint64
	evictPos   int
	evictSlot  int // slot the eviction budget belongs to
	evictSpent int // eviction accesses already issued this slot

	probedSlot  int // slot whose probe has been issued
	pendingSlot int // slot whose probe result is pending in LastLatency
	bits        []bool
	latencies   []sim.Cycles
}

// NewCovertReceiver builds the receiver for the given number of slots.
func NewCovertReceiver(cfg CovertConfig, slots int) (*CovertReceiver, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if slots <= 0 {
		return nil, fmt.Errorf("attack: receiver needs at least one slot")
	}
	return &CovertReceiver{cfg: cfg, slots: slots, probedSlot: -1, pendingSlot: -1}, nil
}

// Name implements machine.Program.
func (r *CovertReceiver) Name() string { return "covert-receiver" }

// Init implements machine.Program: maps the shared page and builds the
// eviction set for it via pagemap, exactly like the rowhammer attack.
func (r *CovertReceiver) Init(p *machine.Proc) error {
	r.proc = p
	if err := p.AS.MapFrames(r.cfg.SharedVA, []uint64{r.cfg.SharedFrame}); err != nil {
		return err
	}
	bufLen := uint64(r.cfg.Options.BufferMB) << 20
	xlate, err := mapBuffer(p, attackBufBase, bufLen, r.cfg.Options.Contiguous)
	if err != nil {
		return err
	}
	spec, err := NewCacheSpec(r.cfg.Options.LLC)
	if err != nil {
		return err
	}
	es, err := buildEvictionSet(spec, r.cfg.Options.Mapper, xlate, r.cfg.SharedVA,
		attackBufBase, bufLen, r.cfg.EvictLines, nil, 0)
	if err != nil {
		return err
	}
	r.evict = es.Conflicts
	return nil
}

// Bits returns the received bits (one per completed slot).
func (r *CovertReceiver) Bits() []bool { return r.bits }

// Latencies returns the probe latencies, for inspection.
func (r *CovertReceiver) Latencies() []sim.Cycles { return r.latencies }

// Next implements machine.Program.
func (r *CovertReceiver) Next() machine.Op {
	// Harvest the pending probe's latency first.
	if r.pendingSlot >= 0 {
		lat := r.proc.LastLatency
		r.latencies = append(r.latencies, lat)
		r.bits = append(r.bits, lat <= r.cfg.HitThreshold)
		r.pendingSlot = -1
	}
	t := r.proc.Time()
	slot64 := t / r.cfg.SlotCycles
	if slot64 >= sim.Cycles(r.slots) {
		return machine.Op{Kind: machine.OpDone}
	}
	slot := int(slot64) //lint:allow tickconv bounded by r.slots just above
	if slot != r.evictSlot {
		r.evictSlot = slot
		r.evictSpent = 0
	}
	phase := t % r.cfg.SlotCycles
	evictEnd := r.cfg.SlotCycles * 3 / 4
	switch {
	case phase < evictEnd && r.probedSlot < slot && r.evictSpent < 3*len(r.evict):
		// Eviction phase: a few walks over the congruent lines.
		va := r.evict[r.evictPos%len(r.evict)]
		r.evictPos++
		r.evictSpent++
		return machine.Op{Kind: machine.OpLoad, VA: va}
	case phase < evictEnd:
		return machine.Op{Kind: machine.OpCompute, Cycles: 200}
	case r.probedSlot < slot:
		// Probe: reload the shared line; classify on the next call.
		r.probedSlot = slot
		r.pendingSlot = slot
		return machine.Op{Kind: machine.OpLoad, VA: r.cfg.SharedVA}
	default:
		// Wait out the slot.
		return machine.Op{Kind: machine.OpCompute, Cycles: 200}
	}
}

// DecodeBits packs received bits into a byte string (MSB first).
func DecodeBits(bits []bool) []byte {
	out := make([]byte, 0, (len(bits)+7)/8)
	for i := 0; i+8 <= len(bits); i += 8 {
		var b byte
		for j := 0; j < 8; j++ {
			b <<= 1
			if bits[i+j] {
				b |= 1
			}
		}
		out = append(out, b)
	}
	return out
}

// EncodeBits unpacks a byte string into bits (MSB first).
func EncodeBits(data []byte) []bool {
	out := make([]bool, 0, len(data)*8)
	for _, b := range data {
		for j := 7; j >= 0; j-- {
			out = append(out, b>>uint(j)&1 == 1)
		}
	}
	return out
}

var (
	_ machine.Program = (*CovertSender)(nil)
	_ machine.Program = (*CovertReceiver)(nil)
	_                 = vm.PageSize
)
