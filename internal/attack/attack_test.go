package attack

import (
	"errors"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/vm"
)

func testMachine(t *testing.T) *machine.Machine {
	t.Helper()
	cfg := machine.DefaultConfig()
	cfg.Cores = 1
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func baseOptions(m *machine.Machine) Options {
	return Options{
		Mapper:     m.Mem.DRAM.Mapper(),
		LLC:        cache.SandyBridgeConfig().Levels[2],
		AutoTarget: true,
		BufferMB:   16,
		Contiguous: true,
	}
}

// runUntilFlip drives the machine until a bit flips or the deadline, in
// coarse slices; it returns the flip time (or false).
func runUntilFlip(t *testing.T, m *machine.Machine, deadline time.Duration) (time.Duration, bool) {
	t.Helper()
	slice := m.Freq.Cycles(time.Millisecond)
	end := m.Freq.Cycles(deadline)
	for now := sim.Cycles(0); now < end; now += slice {
		if err := m.Run(now + slice); err != nil && !errors.Is(err, machine.ErrAllDone) {
			t.Fatal(err)
		}
		if m.Mem.DRAM.FlipCount() > 0 {
			return m.Freq.Duration(m.Mem.DRAM.Flips()[0].Time), true
		}
	}
	return 0, false
}

func plantVictim(t *testing.T, m *machine.Machine, h interface{ Victim() Target }) {
	t.Helper()
	v := h.Victim()
	if v.Bank == 0 && v.VictimRow == 0 {
		t.Fatal("attack did not resolve a target")
	}
	// The weakest cells the paper's module exhibited: 400K disturbance units.
	m.Mem.DRAM.PlantWeakRow(v.Bank, v.VictimRow, 400_000)
}

func TestDoubleSidedFlushFlipsInTime(t *testing.T) {
	m := testMachine(t)
	a, err := NewDoubleSidedFlush(baseOptions(m))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Spawn(0, a); err != nil {
		t.Fatal(err)
	}
	plantVictim(t, m, a)
	ft, ok := runUntilFlip(t, m, 64*time.Millisecond)
	if !ok {
		t.Fatal("double-sided CLFLUSH attack never flipped within one 64ms refresh window")
	}
	// Paper: 15ms. Shape bound: well under half a refresh window.
	if ft > 32*time.Millisecond {
		t.Errorf("time to first flip %v, want < 32ms", ft)
	}
	// Paper: 220K accesses minimum. With the alternation bonus the count
	// should land close to 400K/1.82 ≈ 220K.
	acc := a.AggressorAccesses()
	if acc < 200_000 || acc > 260_000 {
		t.Errorf("aggressor accesses at flip ≈ %d, want ~220K", acc)
	}
}

func TestSingleSidedFlushSlower(t *testing.T) {
	m := testMachine(t)
	a, err := NewSingleSidedFlush(baseOptions(m))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Spawn(0, a); err != nil {
		t.Fatal(err)
	}
	plantVictim(t, m, a)
	ft, ok := runUntilFlip(t, m, 150*time.Millisecond)
	if !ok {
		t.Fatal("single-sided CLFLUSH attack never flipped")
	}
	// Paper: 58ms and 400K accesses (no double-sided bonus).
	if ft < 32*time.Millisecond {
		t.Errorf("single-sided flipped in %v; should be slower than double-sided", ft)
	}
	acc := a.AggressorAccesses()
	if acc < 380_000 || acc > 440_000 {
		t.Errorf("aggressor accesses at flip ≈ %d, want ~400K", acc)
	}
}

func TestClflushFreePatternProperties(t *testing.T) {
	m := testMachine(t)
	a, err := NewClflushFree(baseOptions(m))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Spawn(0, a); err != nil {
		t.Fatal(err)
	}
	x, y := a.Patterns()
	for _, p := range []Pattern{x, y} {
		if len(p.Addrs) != 13 {
			t.Errorf("pattern has %d addresses, want 13 (12-way + aggressor)", len(p.Addrs))
		}
		if p.MissesPerIteration < 2 || p.MissesPerIteration > 3 {
			t.Errorf("pattern misses %d per iteration, want 2-3", p.MissesPerIteration)
		}
		if p.AggressorSlot < 0 || p.AggressorSlot >= len(p.Addrs) {
			t.Errorf("bad aggressor slot %d", p.AggressorSlot)
		}
	}
	if x.Addrs[x.AggressorSlot] == y.Addrs[y.AggressorSlot] {
		t.Error("both patterns share one aggressor")
	}
}

func TestClflushFreeFlips(t *testing.T) {
	m := testMachine(t)
	a, err := NewClflushFree(baseOptions(m))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Spawn(0, a); err != nil {
		t.Fatal(err)
	}
	plantVictim(t, m, a)
	ft, ok := runUntilFlip(t, m, 64*time.Millisecond)
	if !ok {
		t.Fatal("CLFLUSH-free attack never flipped within one 64ms refresh window")
	}
	// Paper: 45ms — slower than CLFLUSH-based double-sided (15ms), still
	// within a single refresh window, using loads only.
	if ft < 20*time.Millisecond || ft > 64*time.Millisecond {
		t.Errorf("CLFLUSH-free time to first flip %v, want between double-sided (~18ms) and 64ms", ft)
	}
	if fl := m.Cores[0].Stats.Flushes; fl != 0 {
		t.Errorf("CLFLUSH-free attack executed %d CLFLUSH ops", fl)
	}
}

func TestClflushFreeAggressorMissesEveryIteration(t *testing.T) {
	// Whole-hierarchy check of the Fig. 1b property: per iteration, the
	// aggressor must reach DRAM (activate its row) exactly once.
	m := testMachine(t)
	opts := baseOptions(m)
	opts.MaxIterations = 2000
	a, err := NewClflushFree(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Spawn(0, a); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(1 << 40); !errors.Is(err, machine.ErrAllDone) {
		t.Fatal(err)
	}
	v := a.Victim()
	// After warm-up, both aggressor rows must be activated ~once per
	// iteration; check via the victim's accumulated disturbance.
	units := m.Mem.DRAM.VictimUnits(v.Bank, v.VictimRow, m.Time())
	iters := float64(a.Iterations())
	// Perfect double-sided: ~1.82 units per side-pair = 2*1.82 per iteration...
	// each iteration contributes 2 accesses * 1.82 units (after warm-up).
	perIter := units / iters
	if perIter < 3.0 || perIter > 3.7 {
		t.Errorf("victim receives %.2f units/iteration, want ~3.6 (2 alternating accesses)", perIter)
	}
}

func TestClflushFreeRequiresPagemap(t *testing.T) {
	m := testMachine(t)
	m.Kernel.Pagemap.Restricted = true // the kernel mitigation
	a, err := NewClflushFree(baseOptions(m))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Spawn(0, a); err == nil {
		t.Fatal("attack built eviction sets despite restricted pagemap")
	} else if !errors.Is(err, vm.ErrPagemapRestricted) {
		t.Errorf("error = %v, want pagemap restriction", err)
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := NewDoubleSidedFlush(Options{}); err == nil {
		t.Error("nil mapper accepted")
	}
	m := testMachine(t)
	opts := baseOptions(m)
	opts.BufferMB = 0
	if _, err := NewSingleSidedFlush(opts); err == nil {
		t.Error("zero buffer accepted")
	}
	opts = baseOptions(m)
	opts.LLC = cache.LevelConfig{}
	if _, err := NewClflushFree(opts); err == nil {
		t.Error("missing LLC model accepted")
	}
}

func TestMaxIterationsStopsAttack(t *testing.T) {
	m := testMachine(t)
	opts := baseOptions(m)
	opts.MaxIterations = 100
	a, err := NewDoubleSidedFlush(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Spawn(0, a); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(1 << 40); !errors.Is(err, machine.ErrAllDone) {
		t.Fatalf("Run = %v", err)
	}
	if a.Iterations() != 100 {
		t.Errorf("iterations = %d, want 100", a.Iterations())
	}
	if a.AggressorAccesses() != 200 {
		t.Errorf("aggressor accesses = %d, want 200", a.AggressorAccesses())
	}
}

func TestBuildPatternRejectsShortEvictionSet(t *testing.T) {
	es := EvictionSet{Aggressor: 0x1000, Conflicts: []uint64{1, 2, 3}}
	if _, err := BuildPattern(es, cache.BitPLRU, 12); err == nil {
		t.Error("short eviction set accepted")
	}
}

func TestReplayOnPolicyColdMisses(t *testing.T) {
	trace := ReplayOnPolicy(cache.TrueLRU, 4, []int{0, 1, 2, 3, 0, 1, 2, 3})
	for i := 0; i < 4; i++ {
		if !trace[i] {
			t.Errorf("access %d should cold-miss", i)
		}
	}
	for i := 4; i < 8; i++ {
		if trace[i] {
			t.Errorf("access %d should hit (fits in 4 ways)", i)
		}
	}
}

func TestPolicyInferenceIdentifiesBitPLRU(t *testing.T) {
	// The machine's LLC is Bit-PLRU (Sandy Bridge). The probe must rank
	// bit-plru first among the candidate simulators, reproducing §2.2.
	m := testMachine(t)
	opts := baseOptions(m)
	scores, err := RunInference(m, opts, 60, cache.AllPolicies())
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != len(cache.AllPolicies()) {
		t.Fatalf("scores = %v", scores)
	}
	if scores[0].Policy != cache.BitPLRU {
		t.Errorf("inference ranked %s first (%.3f), want bit-plru; full ranking: %v",
			scores[0].Policy, scores[0].Match, scores)
	}
	if scores[0].Match < 0.9 {
		t.Errorf("best match only %.3f, want > 0.9", scores[0].Match)
	}
}

func TestInferencePrefersActualPolicy(t *testing.T) {
	// Cross-check: configure the LLC with true LRU and the inference must
	// now rank lru first, not bit-plru.
	cfg := machine.DefaultConfig()
	cfg.Cores = 1
	cfg.Memory.Cache.Levels[2].Policy = cache.TrueLRU
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	opts := baseOptions(m)
	scores, err := RunInference(m, opts, 60, cache.AllPolicies())
	if err != nil {
		t.Fatal(err)
	}
	if scores[0].Policy != cache.TrueLRU {
		t.Errorf("inference ranked %s first, want lru; ranking: %v", scores[0].Policy, scores)
	}
}
