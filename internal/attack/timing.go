package attack

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/vm"
)

// This file implements eviction-set discovery *by timing alone* — no
// /proc/pagemap, no huge pages, no physical addresses. It is the vector the
// paper points at when discussing the kernel's pagemap restriction: the
// mitigation "still leaves room for potential attacks that rely on
// side-channel information to make inferences about the physical memory
// layout", and it is the technique the JavaScript rowhammer attack built
// from this work (reference [8]) uses.
//
// The method is classic group testing: a large candidate pool that
// certainly evicts a witness line is reduced group by group, keeping the
// eviction property (checked by measuring the witness's reload latency)
// until a small congruent core remains.

// TimingConfig parameterises timing-based eviction-set discovery.
type TimingConfig struct {
	// HitThreshold divides cache-hit from DRAM reload latencies.
	HitThreshold sim.Cycles
	// TargetSize is the reduced set size to stop at; a little above the
	// associativity keeps eviction reliable under pseudo-LRU policies.
	TargetSize int
	// Passes is how many times the candidate set is walked per eviction
	// test; two passes defeat most replacement-state accidents.
	Passes int
}

// DefaultTimingConfig works for the standard machine (12-way Bit-PLRU
// LLC). The target is well above the associativity because pseudo-LRU
// replacement makes eviction by a bare-associativity congruent core
// unreliable — the same property that forced the paper's engineered
// pattern. A ~2-3x core keeps eviction deterministic enough to measure.
func DefaultTimingConfig() TimingConfig {
	return TimingConfig{HitThreshold: 60, TargetSize: 32, Passes: 3}
}

// FindEvictionSetByTiming reduces pool to a small set of addresses that
// evicts witness, using only loads and latency measurements through ctx.
// The pool should hold addresses sharing the witness's page-offset bits
// (so the unknown physical set-index bits are the only obstacle).
//
// The reduction is group testing: the set is split into TargetSize+1
// groups and every group whose removal preserves the eviction property is
// dropped, sweep after sweep, concentrating the congruent core. Close to
// the core, single measurements become unreliable (replacement-state
// luck), so tests there use a best-of-three vote.
func FindEvictionSetByTiming(ctx *machine.ScriptCtx, cfg TimingConfig, witness uint64, pool []uint64) ([]uint64, error) {
	if cfg.TargetSize <= 0 || cfg.Passes <= 0 || cfg.HitThreshold == 0 {
		return nil, fmt.Errorf("attack: invalid timing config %+v", cfg)
	}
	evictsOnce := func(set []uint64) bool {
		ctx.Load(witness) // bring the witness in
		ctx.Load(witness) // and make sure it hits
		for p := 0; p < cfg.Passes; p++ {
			if p%2 == 0 {
				for _, a := range set {
					ctx.Load(a)
				}
			} else {
				// Alternate direction: varies the replacement-state walk.
				for i := len(set) - 1; i >= 0; i-- {
					ctx.Load(set[i])
				}
			}
		}
		return ctx.Load(witness) >= cfg.HitThreshold
	}
	// Pseudo-LRU makes single measurements unreliable near the congruent
	// core; majority voting keeps the selective pressure pointed at the
	// non-congruent members.
	evicts := func(set []uint64) bool {
		votes := 0
		for i := 0; i < 3; i++ {
			if evictsOnce(set) {
				votes++
			}
			if votes == 2 || votes-(i+1) == -2 {
				break
			}
		}
		return votes >= 2
	}

	set := append([]uint64(nil), pool...)
	if !evicts(set) {
		return nil, fmt.Errorf("attack: candidate pool of %d does not evict the witness; pool too small", len(set))
	}
	for len(set) > cfg.TargetSize {
		groups := cfg.TargetSize + 1
		removedAny := false
		for g := 0; g < groups && len(set) > cfg.TargetSize; g++ {
			size := (len(set) + groups - 1) / groups
			lo := g * size
			if lo >= len(set) {
				break
			}
			hi := lo + size
			if hi > len(set) {
				hi = len(set)
			}
			candidate := make([]uint64, 0, len(set)-(hi-lo))
			candidate = append(candidate, set[:lo]...)
			candidate = append(candidate, set[hi:]...)
			if evicts(candidate) {
				set = candidate
				removedAny = true
			}
		}
		if !removedAny {
			// No group is removable: the congruent core dominates the set.
			break
		}
	}
	if !evicts(set) {
		return nil, fmt.Errorf("attack: reduction lost the eviction property at %d members", len(set))
	}
	return set, nil
}

// MinimalEvictionSetByTiming runs FindEvictionSetByTiming and then
// purifies the result element by element: any member whose removal
// preserves eviction is dropped. What remains is (approximately) the
// congruent core — the raw material for an engineered access pattern.
func MinimalEvictionSetByTiming(ctx *machine.ScriptCtx, cfg TimingConfig, witness uint64, pool []uint64, ways int) ([]uint64, error) {
	set, err := FindEvictionSetByTiming(ctx, cfg, witness, pool)
	if err != nil {
		return nil, err
	}
	// Removal is conservative — an element is dropped only when eviction
	// survives in all three trials — so true core members stay.
	evictsSurely := func(s []uint64) bool {
		for i := 0; i < 3; i++ {
			ctx.Load(witness)
			ctx.Load(witness)
			for p := 0; p < cfg.Passes; p++ {
				for _, a := range s {
					ctx.Load(a)
				}
			}
			if ctx.Load(witness) < cfg.HitThreshold {
				return false
			}
		}
		return true
	}
	// Keep a small safety margin above the associativity: pattern
	// verification downstream absorbs any non-congruent stragglers.
	floor := ways + 3
	for changed := true; changed && len(set) > floor; {
		changed = false
		for i := 0; i < len(set) && len(set) > floor; i++ {
			candidate := make([]uint64, 0, len(set)-1)
			candidate = append(candidate, set[:i]...)
			candidate = append(candidate, set[i+1:]...)
			if evictsSurely(candidate) {
				set = candidate
				changed = true
				i--
			}
		}
	}
	if len(set) < ways {
		return nil, fmt.Errorf("attack: purification left only %d members, need %d", len(set), ways)
	}
	return set, nil
}

// SameOffsetPool returns page-stride candidates sharing witness's page
// offset across [bufVA, bufVA+bufLen), excluding the witness itself.
func SameOffsetPool(witness, bufVA, bufLen uint64) []uint64 {
	offset := witness % vm.PageSize
	var out []uint64
	for va := bufVA + offset; va+64 <= bufVA+bufLen; va += vm.PageSize {
		if va != witness {
			out = append(out, va)
		}
	}
	return out
}

// timingPattern derives and *verifies* an efficient miss-controlled access
// pattern for one aggressor from its timing-discovered congruent core: the
// policy (known from §2.2 inference) drives BuildPattern, and the pattern
// is then measured — the aggressor's load latency must show a DRAM miss in
// nearly every iteration. Filler subsets rotate until a verified pattern is
// found, which absorbs purification leftovers that are not truly congruent.
func timingPattern(ctx *machine.ScriptCtx, cfg TimingConfig, policy cache.PolicyKind,
	ways int, agg uint64, core []uint64) (Pattern, error) {

	if len(core) < ways {
		return Pattern{}, fmt.Errorf("attack: core of %d below associativity %d", len(core), ways)
	}
	// Separate the truly congruent members from purification leftovers:
	// walking aggressor+core cyclically overcommits the aggressor's set, so
	// congruent members keep missing while stragglers (alone in their own
	// sets) settle into permanent hits.
	walk := append([]uint64{agg}, core...)
	missCount := make(map[uint64]int, len(walk))
	const classifyRounds = 40
	for r := 0; r < classifyRounds; r++ {
		for _, va := range walk {
			if lat := ctx.Load(va); r >= 4 && lat >= cfg.HitThreshold {
				missCount[va]++
			}
		}
	}
	var congruent []uint64
	for _, va := range core {
		if missCount[va] >= classifyRounds/8 {
			congruent = append(congruent, va)
		}
	}
	if len(congruent) < ways {
		return Pattern{}, fmt.Errorf("attack: only %d of %d core members classified congruent, need %d",
			len(congruent), len(core), ways)
	}
	core = congruent

	// Build the template around an arbitrary assignment, then adapt it to
	// the machine empirically: pseudo-LRU dynamics have multiple steady
	// states, and which sequence position ends up missing depends on the
	// (unknown) replacement state we start from. Measure which position
	// misses every iteration, swap the aggressor's address into that slot,
	// and verify.
	fillers := core[:ways]
	pat, err := BuildPattern(EvictionSet{Aggressor: agg, Conflicts: fillers}, policy, ways)
	if err != nil {
		return Pattern{}, err
	}
	const warmup, observe, verifyIters = 8, 8, 30
	for attempt := 0; attempt < 4; attempt++ {
		// Observe the per-position steady-state misses.
		missPos := make([]int, len(pat.Seq))
		for it := 0; it < warmup+observe; it++ {
			for pos, id := range pat.Seq {
				lat := ctx.Load(pat.Addrs[id])
				if it >= warmup && lat >= cfg.HitThreshold {
					missPos[pos]++
				}
			}
		}
		// Find a position missing every observed iteration.
		slot := -1
		for pos, n := range missPos {
			if n == observe {
				slot = pat.Seq[pos]
				break
			}
		}
		if slot < 0 {
			return Pattern{}, fmt.Errorf("attack: template never settles into a steady miss position")
		}
		if pat.Addrs[slot] != agg {
			// Swap the aggressor into the missing slot.
			for id, va := range pat.Addrs {
				if va == agg {
					pat.Addrs[id], pat.Addrs[slot] = pat.Addrs[slot], pat.Addrs[id]
					break
				}
			}
			pat.AggressorSlot = slot
		}
		// Verify: the aggressor must reach DRAM in nearly every iteration.
		misses := 0
		for it := 0; it < verifyIters; it++ {
			for _, va := range pat.Iteration() {
				lat := ctx.Load(va)
				if va == agg && lat >= cfg.HitThreshold {
					misses++
				}
			}
		}
		if misses >= verifyIters*8/10 {
			return pat, nil
		}
	}
	return Pattern{}, fmt.Errorf("attack: could not steer the aggressor into a steady miss slot")
}

// TimingHammer is the end-to-end pagemap-free, CLFLUSH-free double-sided
// hammer, the rowhammer.js pipeline: timing-derived eviction sets, purified
// to the congruent core, turned into engineered miss-controlled patterns
// (the LLC policy is known from the §2.2 inference), verified by
// measurement, then hammered. It runs as a Script.
//
// A real attacker picks aggressor pairs blindly and scans for flips; the
// addresses are parameters here so harnesses can aim at planted weak rows.
func TimingHammer(name string, bufVA, bufMB uint64, agg0, agg1 uint64, policy cache.PolicyKind,
	ways int, cfg TimingConfig, iterations uint64, report func(ev0, ev1 []uint64)) *machine.Script {

	return machine.NewScript(name, func(ctx *machine.ScriptCtx) error {
		bufLen := bufMB << 20
		if !ctx.Proc().AS.Mapped(bufVA) {
			if err := ctx.Map(bufVA, bufLen); err != nil {
				return err
			}
		}
		ev0, err := MinimalEvictionSetByTiming(ctx, cfg, agg0, SameOffsetPool(agg0, bufVA, bufLen), ways)
		if err != nil {
			return fmt.Errorf("aggressor 0: %w", err)
		}
		ev1, err := MinimalEvictionSetByTiming(ctx, cfg, agg1, SameOffsetPool(agg1, bufVA, bufLen), ways)
		if err != nil {
			return fmt.Errorf("aggressor 1: %w", err)
		}
		if report != nil {
			report(ev0, ev1)
		}
		pat0, err := timingPattern(ctx, cfg, policy, ways, agg0, ev0)
		if err != nil {
			return fmt.Errorf("aggressor 0: %w", err)
		}
		pat1, err := timingPattern(ctx, cfg, policy, ways, agg1, ev1)
		if err != nil {
			return fmt.Errorf("aggressor 1: %w", err)
		}
		it0, it1 := pat0.Iteration(), pat1.Iteration()
		for i := uint64(0); iterations == 0 || i < iterations; i++ {
			for _, va := range it0 {
				ctx.Load(va)
			}
			for _, va := range it1 {
				ctx.Load(va)
			}
		}
		return nil
	})
}
