package attack

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/machine"
)

func TestEncodeDecodeBitsRoundTrip(t *testing.T) {
	msg := []byte("anvil")
	bits := EncodeBits(msg)
	if len(bits) != len(msg)*8 {
		t.Fatalf("bits = %d", len(bits))
	}
	if got := DecodeBits(bits); !bytes.Equal(got, msg) {
		t.Fatalf("round trip = %q", got)
	}
	// Trailing partial bytes are dropped.
	if got := DecodeBits(bits[:10]); len(got) != 1 {
		t.Fatalf("partial decode = %v", got)
	}
}

func TestCovertConfigValidation(t *testing.T) {
	m := testMachine(t)
	cfg := DefaultCovertConfig(baseOptions(m))
	if _, err := NewCovertSender(cfg, nil); err == nil {
		t.Error("empty message accepted")
	}
	if _, err := NewCovertReceiver(cfg, 0); err == nil {
		t.Error("zero slots accepted")
	}
	bad := cfg
	bad.SlotCycles = 0
	if _, err := NewCovertSender(bad, []bool{true}); err == nil {
		t.Error("zero slot length accepted")
	}
}

// TestCovertChannelTransfersData is the §2.2 side-channel demonstration:
// a message crosses process boundaries through shared-page cache state,
// with the receiver flushing via eviction sets — zero CLFLUSH anywhere.
func TestCovertChannelTransfersData(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.Cores = 2
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	frame, err := m.Kernel.Alloc.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	cc := DefaultCovertConfig(baseOptions(m))
	cc.SharedFrame = frame

	msg := []byte("ok!")
	bits := EncodeBits(msg)
	snd, err := NewCovertSender(cc, bits)
	if err != nil {
		t.Fatal(err)
	}
	rcv, err := NewCovertReceiver(cc, len(bits))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Spawn(0, snd); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Spawn(1, rcv); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(1 << 40); !errors.Is(err, machine.ErrAllDone) {
		t.Fatal(err)
	}
	got := rcv.Bits()
	if len(got) != len(bits) {
		t.Fatalf("received %d bits, want %d", len(got), len(bits))
	}
	match := 0
	for i := range bits {
		if bits[i] == got[i] {
			match++
		}
	}
	acc := float64(match) / float64(len(bits))
	if acc < 0.95 {
		t.Fatalf("bit accuracy %.2f; sent %v got %v (latencies %v)",
			acc, bits, got, rcv.Latencies())
	}
	if decoded := DecodeBits(got); !bytes.Equal(decoded, msg) {
		t.Logf("decoded %q from %q at %.0f%% bit accuracy", decoded, msg, 100*acc)
	}
	// No CLFLUSH was executed by either side.
	if m.Cores[0].Stats.Flushes+m.Cores[1].Stats.Flushes != 0 {
		t.Error("covert channel used CLFLUSH")
	}
}

// TestCovertChannelAllZeros / AllOnes: degenerate patterns must decode too
// (no reliance on transitions).
func TestCovertChannelConstantPatterns(t *testing.T) {
	for _, bit := range []bool{false, true} {
		cfg := machine.DefaultConfig()
		cfg.Cores = 2
		m, err := machine.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		frame, err := m.Kernel.Alloc.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		cc := DefaultCovertConfig(baseOptions(m))
		cc.SharedFrame = frame
		bits := make([]bool, 16)
		for i := range bits {
			bits[i] = bit
		}
		snd, err := NewCovertSender(cc, bits)
		if err != nil {
			t.Fatal(err)
		}
		rcv, err := NewCovertReceiver(cc, len(bits))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Spawn(0, snd); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Spawn(1, rcv); err != nil {
			t.Fatal(err)
		}
		if err := m.Run(1 << 40); !errors.Is(err, machine.ErrAllDone) {
			t.Fatal(err)
		}
		wrong := 0
		for _, g := range rcv.Bits() {
			if g != bit {
				wrong++
			}
		}
		if wrong > 1 {
			t.Errorf("constant %v pattern: %d/%d wrong (latencies %v)",
				bit, wrong, len(bits), rcv.Latencies())
		}
	}
}
