package attack

import (
	"errors"
	"testing"
	"time"

	"repro/internal/dram"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/vm"
)

// scatterMachine builds a machine with a fragmented physical allocator and
// pre-fragments memory so the attacker's pages interleave with foreign
// ones, as on a long-running system.
func scatterMachine(t *testing.T) *machine.Machine {
	t.Helper()
	cfg := machine.DefaultConfig()
	cfg.Cores = 1
	cfg.AllocPolicy = vm.Scatter
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestClflushFreeOnScatteredMemory runs the full CLFLUSH-free attack with a
// non-contiguous buffer on a fragmented machine: the eviction sets and
// aggressor addresses must be discovered purely through pagemap. The victim
// is a foreign row sandwiched between attacker rows.
func TestClflushFreeOnScatteredMemory(t *testing.T) {
	m := scatterMachine(t)
	prog := &retarget{}
	proc, err := m.Spawn(0, prog)
	if err != nil {
		t.Fatal(err)
	}
	// Interleave attacker chunks with foreign allocations.
	foreign := vm.NewAddressSpace(m.Kernel.Alloc)
	const bufMB = 32
	const bufVA = attackBufBase
	const chunk = 256 << 10
	fva, ava := uint64(0x4_0000_0000), uint64(bufVA)
	for ava < bufVA+bufMB<<20 {
		if err := foreign.Map(fva, 3*chunk); err != nil {
			t.Fatal(err)
		}
		fva += 3 * chunk
		if err := proc.AS.Map(ava, chunk); err != nil {
			t.Fatal(err)
		}
		ava += chunk
	}

	// Find a sandwiched foreign row: attacker owns rows r and r+2 of a
	// bank but not r+1.
	mapper := m.Mem.DRAM.Mapper()
	owned := map[dram.Coord]bool{}
	pm := proc.Pagemap()
	for va := uint64(bufVA); va < bufVA+bufMB<<20; va += vm.PageSize {
		pa, err := pm.Query(proc.AS, va)
		if err != nil {
			t.Fatal(err)
		}
		c := mapper.Map(pa)
		owned[dram.Coord{Bank: c.Bank, Row: c.Row}] = true
	}
	var target Target
	found := false
	for c := range owned {
		if owned[dram.Coord{Bank: c.Bank, Row: c.Row + 2}] &&
			!owned[dram.Coord{Bank: c.Bank, Row: c.Row + 1}] {
			target = Target{Bank: c.Bank, VictimRow: c.Row + 1}
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no sandwiched foreign row; fragmentation model broken")
	}

	a, err := NewClflushFree(Options{
		Mapper:   mapper,
		LLC:      baseOptions(m).LLC,
		Target:   target,
		BufferMB: bufMB,
		// Contiguous is false: everything must go through pagemap.
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Init(proc); err != nil {
		t.Fatalf("CLFLUSH-free init on scattered memory: %v", err)
	}
	prog.hammer = a
	m.Mem.DRAM.PlantWeakRow(target.Bank, target.VictimRow, 400_000)

	end := m.Freq.Cycles(96 * time.Millisecond)
	for now := sim.Cycles(0); now < end && m.Mem.DRAM.FlipCount() == 0; now += m.Freq.Cycles(2 * time.Millisecond) {
		if err := m.Run(now); err != nil && !errors.Is(err, machine.ErrAllDone) {
			t.Fatal(err)
		}
	}
	if m.Mem.DRAM.FlipCount() == 0 {
		t.Error("CLFLUSH-free attack failed on scattered memory")
	}
	if m.Cores[0].Stats.Flushes != 0 {
		t.Error("attack used CLFLUSH")
	}
}

// retarget is a minimal wrapper so the test can install the hammer after
// arranging memory by hand.
type retarget struct{ hammer machine.Program }

func (r *retarget) Name() string               { return "scatter-hammer" }
func (r *retarget) Init(p *machine.Proc) error { return nil }
func (r *retarget) Next() machine.Op {
	if r.hammer == nil {
		return machine.Op{Kind: machine.OpCompute, Cycles: 100}
	}
	return r.hammer.Next()
}
