// Package dram models a DDR3-style DRAM module at the level of detail the
// rowhammer problem requires: banks with open-page row buffers, activate /
// precharge behaviour, the periodic auto-refresh schedule, and — centrally —
// an electrical disturbance model in which activations of a row disturb the
// charge of its physical neighbours and eventually flip bits in them.
//
// The module is the "victim hardware" of the reproduction: attacks hammer
// it, and defenses (ANVIL's selective refresh, doubled refresh rates, PARA,
// TRR, ...) try to prevent the disturbance accumulators from ever reaching a
// weak cell's flip threshold.
//
// All time is expressed in CPU cycles (see internal/sim); the module is
// given its timing parameters pre-converted to cycles.
package dram

import (
	"fmt"

	"repro/internal/sim"
)

// Geometry describes the physical organisation of the module.
type Geometry struct {
	Ranks        int // independent ranks sharing the channel
	BanksPerRank int // banks per rank (DDR3: 8)
	RowsPerBank  int // rows per bank
	RowBytes     int // bytes per row (page size), power of two
}

// DefaultGeometry models the 4 GB DDR3 module from the paper:
// 2 ranks x 8 banks x 32768 rows x 8 KiB rows = 4 GiB.
func DefaultGeometry() Geometry {
	return Geometry{Ranks: 2, BanksPerRank: 8, RowsPerBank: 32768, RowBytes: 8192}
}

// Validate checks the geometry for internal consistency.
func (g Geometry) Validate() error {
	switch {
	case g.Ranks <= 0:
		return fmt.Errorf("dram: Ranks must be positive, got %d", g.Ranks)
	case g.BanksPerRank <= 0:
		return fmt.Errorf("dram: BanksPerRank must be positive, got %d", g.BanksPerRank)
	case g.RowsPerBank <= 0:
		return fmt.Errorf("dram: RowsPerBank must be positive, got %d", g.RowsPerBank)
	case g.RowBytes <= 0 || g.RowBytes&(g.RowBytes-1) != 0:
		return fmt.Errorf("dram: RowBytes must be a positive power of two, got %d", g.RowBytes)
	}
	return nil
}

// Banks returns the total number of banks across all ranks.
func (g Geometry) Banks() int { return g.Ranks * g.BanksPerRank }

// Size returns the total capacity of the module in bytes.
func (g Geometry) Size() uint64 {
	return uint64(g.Ranks) * uint64(g.BanksPerRank) * uint64(g.RowsPerBank) * uint64(g.RowBytes)
}

// Coord identifies a DRAM location: a global bank index (rank folded in),
// a row within that bank, and a byte column within the row.
type Coord struct {
	Bank int
	Row  int
	Col  int
}

// Rank returns the rank a global bank index belongs to.
func (g Geometry) Rank(bank int) int { return bank / g.BanksPerRank }

func (c Coord) String() string {
	return fmt.Sprintf("bank %d row %d col %d", c.Bank, c.Row, c.Col)
}

// Timing holds the module's latency parameters, in CPU cycles.
//
// The simulator uses a latency-additive model rather than a full command
// scheduler: each access is classified as a row-buffer hit, a miss into a
// closed bank, or a conflict with an open row, and charged the matching
// end-to-end latency (controller queue + command + data return).
type Timing struct {
	RowHit          sim.Cycles // access to the currently open row
	RowClosed       sim.Cycles // ACT + CAS into a precharged bank
	RowConflict     sim.Cycles // PRE + ACT + CAS, replacing an open row
	RFC             sim.Cycles // refresh command duration (rank blocked)
	RefreshPeriod   sim.Cycles // time to refresh every row once (tREFW, 64 ms)
	RefreshCommands int        // REF commands per RefreshPeriod (DDR3: 8192)
}

// DefaultTiming returns DDR3-ish latencies at the given core frequency,
// with the standard 64 ms refresh window.
func DefaultTiming(f sim.Freq) Timing {
	ns := func(n float64) sim.Cycles {
		return sim.Cycles(n * float64(f.Hz()) / 1e9)
	}
	return Timing{
		RowHit:          ns(35),               // ~91 cycles at 2.6 GHz
		RowClosed:       ns(48),               // ~125 cycles
		RowConflict:     ns(60),               // ~156 cycles (tRC-bound hammering)
		RFC:             ns(350),              // 8Gb-die tRFC
		RefreshPeriod:   f.Cycles(64_000_000), // 64 ms in ns
		RefreshCommands: 8192,
	}
}

// Validate checks the timing parameters.
func (t Timing) Validate() error {
	switch {
	case t.RowHit == 0 || t.RowClosed == 0 || t.RowConflict == 0:
		return fmt.Errorf("dram: access latencies must be nonzero")
	case t.RowHit > t.RowClosed || t.RowClosed > t.RowConflict:
		return fmt.Errorf("dram: expected RowHit <= RowClosed <= RowConflict, got %d/%d/%d",
			t.RowHit, t.RowClosed, t.RowConflict)
	case t.RefreshPeriod == 0:
		return fmt.Errorf("dram: RefreshPeriod must be nonzero")
	case t.RefreshCommands <= 0:
		return fmt.Errorf("dram: RefreshCommands must be positive")
	}
	return nil
}

// TREFI returns the average interval between refresh commands.
func (t Timing) TREFI() sim.Cycles {
	return t.RefreshPeriod / sim.Cycles(t.RefreshCommands)
}

// RefreshScaled returns a copy of t with the refresh period divided by
// scale — i.e. RefreshScaled(2) models the industry "double refresh rate"
// mitigation (32 ms window), RefreshScaled(4) a 16 ms window. It rejects
// non-positive scales, so callers plumbing scales from configuration
// (flags, scenario specs) report a proper error instead of panicking.
func (t Timing) RefreshScaled(scale int) (Timing, error) {
	if scale <= 0 {
		return Timing{}, fmt.Errorf("dram: refresh scale must be positive, got %d", scale)
	}
	t.RefreshPeriod = t.RefreshPeriod / sim.Cycles(scale)
	return t, nil
}
