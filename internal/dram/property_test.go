package dram

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// TestAccumulatorNeverExceedsActivations: the disturbance units deposited
// into any victim can never exceed (1 + bonus) per neighbouring activation.
func TestAccumulatorNeverExceedsActivations(t *testing.T) {
	err := quick.Check(func(rows []uint8) bool {
		cfg := testConfig()
		m, err := New(cfg)
		if err != nil {
			return false
		}
		acts := 0
		var now sim.Cycles
		for _, r := range rows {
			row := int(r)%64 + 100
			m.Access(m.Mapper().Unmap(Coord{Bank: 0, Row: row, Col: 0}), false, now)
			now += 200
			acts++
			// Probe every victim near the hammered range.
			for v := 99; v <= 165; v++ {
				u := m.VictimUnits(0, v, now)
				if u > float64(acts)*(1+cfg.Disturb.AlternationBonus)+1e-9 {
					t.Logf("victim %d has %g units after %d activations", v, u, acts)
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Error(err)
	}
}

// TestSelectiveRefreshAlwaysResets: for arbitrary hammer prefixes, reading
// the victim always zeroes its accumulator.
func TestSelectiveRefreshAlwaysResets(t *testing.T) {
	err := quick.Check(func(n uint8) bool {
		cfg := testConfig()
		m, err := New(cfg)
		if err != nil {
			return false
		}
		const victim = 500
		agg := m.Mapper().Unmap(Coord{Bank: 1, Row: victim + 1, Col: 0})
		other := m.Mapper().Unmap(Coord{Bank: 1, Row: 3000, Col: 0})
		var now sim.Cycles = 1
		for i := 0; i < int(n); i++ {
			m.Access(agg, false, now)
			now += 150
			m.Access(other, false, now)
			now += 150
		}
		m.Access(m.Mapper().Unmap(Coord{Bank: 1, Row: victim, Col: 0}), false, now)
		return m.VictimUnits(1, victim, now) == 0
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Error(err)
	}
}

// TestRefreshSweepMonotonic: lastScheduledRefresh never decreases with time
// and never exceeds now.
func TestRefreshSweepMonotonic(t *testing.T) {
	cfg := testConfig()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range []int{0, 1, 100, cfg.Geometry.RowsPerBank - 1} {
		var prev sim.Cycles
		for now := sim.Cycles(0); now < cfg.Timing.RefreshPeriod*3; now += cfg.Timing.TREFI() / 3 {
			r := m.lastScheduledRefresh(row, now)
			if r > now {
				t.Fatalf("row %d: refresh at %d in the future of %d", row, r, now)
			}
			if r < prev {
				t.Fatalf("row %d: refresh time went backwards: %d -> %d", row, prev, r)
			}
			prev = r
		}
		// Across three periods the row must have been refreshed at least twice.
		if prev == 0 {
			t.Fatalf("row %d never refreshed in three periods", row)
		}
	}
}

// TestEveryRowRefreshedOncePerPeriod: within any full refresh period, every
// row's scheduled refresh advances by exactly one period.
func TestEveryRowRefreshedOncePerPeriod(t *testing.T) {
	cfg := testConfig()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The effective sweep period is tREFI * commands (tREFI truncates to
	// whole cycles, so it may undershoot RefreshPeriod by < one command).
	period := cfg.Timing.TREFI() * sim.Cycles(cfg.Timing.RefreshCommands)
	for row := 0; row < cfg.Geometry.RowsPerBank; row += 97 {
		r1 := m.lastScheduledRefresh(row, period*2)
		r2 := m.lastScheduledRefresh(row, period*3)
		if r2-r1 != period {
			t.Fatalf("row %d: refresh advanced by %d, want %d", row, r2-r1, period)
		}
	}
}

// TestDeterministicFlips: identical machines and access sequences flip the
// same bits at the same times.
func TestDeterministicFlips(t *testing.T) {
	run := func() []BitFlip {
		cfg := testConfig()
		m, _ := New(cfg)
		m.PlantWeakRow(2, 200, 900)
		lo := m.Mapper().Unmap(Coord{Bank: 2, Row: 199, Col: 0})
		hi := m.Mapper().Unmap(Coord{Bank: 2, Row: 201, Col: 0})
		var now sim.Cycles
		for i := 0; i < 600; i++ {
			m.Access(lo, false, now)
			now += 160
			m.Access(hi, false, now)
			now += 160
		}
		return m.Flips()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no flips")
	}
	if len(a) != len(b) {
		t.Fatalf("flip counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("flip %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestPlantWeakCellValidation exercises the multi-cell API's guards.
func TestPlantWeakCellValidation(t *testing.T) {
	m := mustModule(t, testConfig())
	for _, f := range []func() error{
		func() error { return m.PlantWeakCell(0, 0, 0, 5) },
		func() error { return m.PlantWeakCell(0, 0, 100, -1) },
		func() error { return m.PlantWeakCell(0, 0, 100, m.Config().Geometry.RowBytes*8) },
		func() error { return m.PlantWeakCell(-1, 0, 100, 5) },
		func() error { return m.PlantWeakCell(0, m.Config().Geometry.RowsPerBank, 100, 5) },
	} {
		if f() == nil {
			t.Error("bad PlantWeakCell accepted")
		}
	}
	if err := m.PlantWeakCell(0, 0, 100, 5); err != nil {
		t.Errorf("valid PlantWeakCell rejected: %v", err)
	}
}

// TestProceduralMultiCellRows: with MaxWeakCellsPerRow > 1 some rows carry
// several cells with ascending thresholds.
func TestProceduralMultiCellRows(t *testing.T) {
	cfg := testConfig()
	cfg.Disturb.MaxWeakCellsPerRow = 4
	multi := 0
	for row := 0; row < 4096; row++ {
		cells := cfg.Disturb.cells(0, row, cfg.Geometry.RowBytes*8)
		if len(cells) > 1 {
			multi++
			for k := 1; k < len(cells); k++ {
				if cells[k].threshold <= cells[k-1].threshold {
					t.Fatalf("row %d: cell thresholds not ascending: %+v", row, cells)
				}
			}
		}
		if len(cells) > 4 {
			t.Fatalf("row %d has %d cells, cap is 4", row, len(cells))
		}
	}
	if multi == 0 {
		t.Error("no multi-cell rows generated")
	}
}

func TestXORMapperRoundTrip(t *testing.T) {
	g := DefaultGeometry()
	m, err := NewXORMapper(g, SandyBridgeMasks(g))
	if err != nil {
		t.Fatal(err)
	}
	err = quick.Check(func(pa uint64) bool {
		pa %= g.Size()
		c := m.Map(pa)
		back := m.Unmap(c)
		return m.Map(back) == c && back == pa
	}, &quick.Config{MaxCount: 3000})
	if err != nil {
		t.Error(err)
	}
}

func TestXORMapperSpreadsRowsAcrossBanks(t *testing.T) {
	g := DefaultGeometry()
	m, err := NewXORMapper(g, SandyBridgeMasks(g))
	if err != nil {
		t.Fatal(err)
	}
	lin := mustMapper(t, g, false)
	// Same plain address, consecutive rows: the XOR map should move it
	// across banks where the plain map keeps the bank fixed.
	banksXOR := map[int]bool{}
	banksLin := map[int]bool{}
	for row := 0; row < 8; row++ {
		pa := lin.Unmap(Coord{Bank: 0, Row: row, Col: 0})
		banksXOR[m.Map(pa).Bank] = true
		banksLin[lin.Map(pa).Bank] = true
	}
	if len(banksLin) != 1 {
		t.Fatalf("linear map moved banks: %v", banksLin)
	}
	if len(banksXOR) < 4 {
		t.Errorf("XOR map spread %d banks over 8 rows, want >= 4", len(banksXOR))
	}
}

func TestXORMapperValidation(t *testing.T) {
	g := DefaultGeometry()
	if _, err := NewXORMapper(g, nil); err == nil {
		t.Error("missing masks accepted")
	}
	if _, err := NewXORMapper(g, []uint64{1, 2}); err == nil {
		t.Error("wrong mask count accepted")
	}
	if _, err := NewXORMapper(g, []uint64{1, 2, 0}); err == nil {
		t.Error("zero mask accepted")
	}
}

func TestModuleWithXORMapper(t *testing.T) {
	cfg := testConfig()
	var err error
	cfg.Mapper, err = NewXORMapper(cfg.Geometry, SandyBridgeMasks(cfg.Geometry))
	if err != nil {
		t.Fatal(err)
	}
	m := mustModule(t, cfg)
	m.PlantWeakRow(2, 300, 500)
	lo := m.Mapper().Unmap(Coord{Bank: 2, Row: 299, Col: 0})
	hi := m.Mapper().Unmap(Coord{Bank: 2, Row: 301, Col: 0})
	var now sim.Cycles
	for i := 0; i < 400 && m.FlipCount() == 0; i++ {
		m.Access(lo, false, now)
		now += 160
		m.Access(hi, false, now)
		now += 160
	}
	if m.FlipCount() == 0 {
		t.Error("hammering through the XOR map never flipped; Unmap broken?")
	}
}
