package dram

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"repro/internal/sim"
)

// Config assembles a Module.
type Config struct {
	Geometry Geometry
	Timing   Timing
	Disturb  DisturbConfig
	// Mapper translates physical addresses; nil selects a LinearMapper with
	// bank hashing disabled (row-adjacent addresses stay row-adjacent).
	Mapper Mapper
	// StaggerRanks offsets each rank's refresh schedule by tREFI/ranks so
	// refresh blocking is spread in time (real controllers do this).
	StaggerRanks bool
	// Detailed switches access latency computation to the command-level
	// engine (PRE/ACT/RD with JEDEC inter-command constraints). Nil keeps
	// the fast latency-additive model.
	Detailed *DetailedTiming
	// Contention serialises accesses to one bank: a request arriving while
	// the bank services another queues behind it. Off by default (the
	// latency-additive model treats each core's accesses independently).
	Contention bool
}

// DefaultConfig returns the paper's 4 GB DDR3 module at the given frequency.
func DefaultConfig(f sim.Freq) Config {
	return Config{
		Geometry:     DefaultGeometry(),
		Timing:       DefaultTiming(f),
		Disturb:      DefaultDisturbConfig(),
		StaggerRanks: true,
	}
}

// bankState is the per-bank dynamic state.
type bankState struct {
	openRow    int // -1 when precharged
	lastActRow int // previously *activated* row (for the alternation bonus)
	lastAccess sim.Cycles
	busyUntil  sim.Cycles
	acts       uint64
}

// Stats aggregates module activity.
type Stats struct {
	Reads         uint64
	Writes        uint64
	RowHits       uint64
	RowMisses     uint64 // activation into a precharged bank
	RowConflicts  uint64 // activation displacing an open row
	Activations   uint64
	RefreshStalls uint64     // accesses delayed by an in-progress REF
	StallCycles   sim.Cycles // total cycles lost to refresh blocking
	BankQueue     sim.Cycles // cycles spent queued behind a busy bank
	Flips         int
}

// Activates reports total row activations (misses + conflicts).
func (s Stats) Activates() uint64 { return s.RowMisses + s.RowConflicts }

// AccessResult describes the outcome of one DRAM access.
type AccessResult struct {
	Latency   sim.Cycles
	Coord     Coord
	RowHit    bool
	Activated bool
	Stall     sim.Cycles // refresh-blocking portion of Latency
}

// ActivateHook observes row activations; hardware defenses (PARA, TRR,
// ARMOR) register hooks to watch the command stream the way a memory
// controller would.
type ActivateHook func(c Coord, now sim.Cycles)

// Module is a simulated DRAM module.
type Module struct {
	cfg    Config
	mapper Mapper
	linMap *LinearMapper // mapper devirtualized when it is the stock one
	banks  []bankState
	trefi  sim.Cycles

	engine      *commandEngine        // nil unless Config.Detailed is set
	disturbed   []bankDisturb         // per-bank dense accumulators, index = bank
	planted     map[uint64][]weakCell // explicit weak cells (tests, harness)
	flips       []BitFlip
	transient   []BitFlip    // fault-injected transient errors (see TransientFlips)
	fault       *moduleFault // nil unless InjectFaults installed one
	hooks       []ActivateHook
	interceptor func(c Coord, now sim.Cycles) bool

	rowsPerRefCmd uint64 // rows covered by one REF command (lastScheduledRefresh)
	// binShift/cmdMask replace the division by rowsPerRefCmd and the modulo
	// by RefreshCommands with shift/mask when both are powers of two (true
	// for every shipped geometry); the *OK flags gate the fast path.
	binShift   uint
	binShiftOK bool
	cmdMask    uint64
	cmdMaskOK  bool

	// refOffset is each rank's refresh-schedule offset (zero unless
	// StaggerRanks), precomputed so the access path never divides by the rank
	// count.
	refOffset []sim.Cycles
	// stallFree memoises, per rank, a half-open interval of simulated time
	// known to carry no refresh stall, so streams of accesses inside one
	// tREFI window skip the modulo in refreshStall. Intervals are exact in
	// both directions because callers' clocks are not monotone (cache
	// writebacks arrive slightly in the past).
	stallFreeFrom []sim.Cycles
	stallFreeTo   []sim.Cycles
	// epochK/epochStart/epochEnd memoise one refresh epoch (the interval
	// [k*tREFI, (k+1)*tREFI) containing the last queried time) for the
	// REF-close check and lastScheduledRefresh. Pure memoisation of
	// uint64(t)/tREFI: results are identical whether or not the cache hits.
	epochK     uint64
	epochStart sim.Cycles
	epochEnd   sim.Cycles

	stats Stats
}

// bankDisturb is one bank's disturbance state, stored densely by row so the
// activation path indexes an array instead of hashing (bank,row) keys. The
// slice is allocated on the bank's first disturbance; each victim carries
// its own cached flip threshold.
type bankDisturb struct {
	vic []victim // accumulators + cached thresholds, index = row
}

func victimKey(bank, row int) uint64 { return uint64(bank)<<32 | uint64(uint32(row)) }

// New builds a Module. The zero-value Config is invalid; start from
// DefaultConfig.
func New(cfg Config) (*Module, error) {
	if err := cfg.Geometry.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Timing.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Disturb.Validate(); err != nil {
		return nil, err
	}
	mapper := cfg.Mapper
	if mapper == nil {
		var err error
		mapper, err = NewLinearMapper(cfg.Geometry, false)
		if err != nil {
			return nil, err
		}
	}
	if err := cfg.Detailed.Validate(); err != nil {
		return nil, err
	}
	cmds := uint64(cfg.Timing.RefreshCommands)
	m := &Module{
		cfg:           cfg,
		mapper:        mapper,
		banks:         make([]bankState, cfg.Geometry.Banks()),
		trefi:         cfg.Timing.TREFI(),
		disturbed:     make([]bankDisturb, cfg.Geometry.Banks()),
		planted:       make(map[uint64][]weakCell),
		rowsPerRefCmd: (uint64(cfg.Geometry.RowsPerBank) + cmds - 1) / cmds,
	}
	if lm, ok := mapper.(*LinearMapper); ok {
		m.linMap = lm
	}
	if m.rowsPerRefCmd&(m.rowsPerRefCmd-1) == 0 {
		m.binShift = uint(bits.TrailingZeros64(m.rowsPerRefCmd))
		m.binShiftOK = true
	}
	if cmds&(cmds-1) == 0 {
		m.cmdMask = cmds - 1
		m.cmdMaskOK = true
	}
	if cfg.Detailed != nil {
		m.engine = newCommandEngine(cfg.Detailed, cfg.Geometry.Banks(), cfg.Geometry.Ranks)
	}
	ranks := cfg.Geometry.Ranks
	m.refOffset = make([]sim.Cycles, ranks)
	m.stallFreeFrom = make([]sim.Cycles, ranks)
	m.stallFreeTo = make([]sim.Cycles, ranks)
	if cfg.StaggerRanks && ranks > 1 {
		for r := 0; r < ranks; r++ {
			m.refOffset[r] = m.trefi / sim.Cycles(ranks) * sim.Cycles(r)
		}
	}
	for i := range m.banks {
		m.banks[i].openRow = -1
		m.banks[i].lastActRow = -1
	}
	return m, nil
}

// Mapper returns the address map in use.
func (m *Module) Mapper() Mapper { return m.mapper }

// Config returns the module's configuration.
func (m *Module) Config() Config { return m.cfg }

// Stats returns a snapshot of the module's counters.
func (m *Module) Stats() Stats {
	s := m.stats
	s.Flips = len(m.flips)
	return s
}

// Flips returns all recorded bit flips, in occurrence order.
func (m *Module) Flips() []BitFlip {
	return append([]BitFlip(nil), m.flips...)
}

// FlipCount returns the number of bit flips recorded so far.
func (m *Module) FlipCount() int { return len(m.flips) }

// OnActivate registers a hook invoked on every row activation.
func (m *Module) OnActivate(h ActivateHook) { m.hooks = append(m.hooks, h) }

// SetInterceptor installs a pre-activation filter: when it returns true the
// access is served without opening the DRAM row (the mechanism behind
// ARMOR-style hot-row buffers in the memory controller). Row-buffer hits
// are not intercepted — they never activate.
func (m *Module) SetInterceptor(f func(c Coord, now sim.Cycles) bool) { m.interceptor = f }

// plantCheck validates the coordinates and threshold common to the Plant
// methods. Thresholds and coordinates typically come straight from CLI
// flags, so violations are reported as errors rather than panics.
func (m *Module) plantCheck(bank, row int, units float64) error {
	switch {
	case units <= 0:
		return fmt.Errorf("dram: planted threshold must be positive, got %g", units)
	case bank < 0 || bank >= m.cfg.Geometry.Banks():
		return fmt.Errorf("dram: bank %d outside module (have %d banks)", bank, m.cfg.Geometry.Banks())
	case row < 0 || row >= m.cfg.Geometry.RowsPerBank:
		return fmt.Errorf("dram: row %d outside bank (have %d rows)", row, m.cfg.Geometry.RowsPerBank)
	}
	return nil
}

// PlantWeakRow overrides the weak cells of one row with a single cell at
// the given threshold, making experiments exactly reproducible regardless
// of the procedural weak-cell map.
func (m *Module) PlantWeakRow(bank, row int, units float64) error {
	if err := m.plantCheck(bank, row, units); err != nil {
		return err
	}
	bit := int(rowHash(m.cfg.Disturb.Seed^0xb17f11b, bank, row) % uint64(m.cfg.Geometry.RowBytes*8))
	m.planted[victimKey(bank, row)] = []weakCell{{threshold: units, bit: bit}}
	m.dropCachedThreshold(bank, row)
	return nil
}

// dropCachedThreshold marks a row's dense threshold cache entry as
// uncomputed after planting changes the row's weak cells.
func (m *Module) dropCachedThreshold(bank, row int) {
	if bd := &m.disturbed[bank]; bd.vic != nil {
		bd.vic[row].thr = 0
	}
}

// PlantWeakCell appends one explicit weak cell (threshold + bit position)
// to a row. Planting several cells in the same 64-bit word models the
// multi-flip-per-word behaviour that defeats SECDED ECC (§1.2).
func (m *Module) PlantWeakCell(bank, row int, units float64, bit int) error {
	if err := m.plantCheck(bank, row, units); err != nil {
		return err
	}
	if bit < 0 || bit >= m.cfg.Geometry.RowBytes*8 {
		return fmt.Errorf("dram: bit %d outside the row (%d bits)", bit, m.cfg.Geometry.RowBytes*8)
	}
	k := victimKey(bank, row)
	cells := append(m.planted[k], weakCell{threshold: units, bit: bit})
	sort.Slice(cells, func(i, j int) bool { return cells[i].threshold < cells[j].threshold })
	m.planted[k] = cells
	m.dropCachedThreshold(bank, row)
	return nil
}

// rowCells returns the row's weak cells, weakest first.
func (m *Module) rowCells(bank, row int) []weakCell {
	if cells, ok := m.planted[victimKey(bank, row)]; ok {
		return cells
	}
	return m.cfg.Disturb.cells(bank, row, m.cfg.Geometry.RowBytes*8)
}

// cacheThreshold computes (bank,row)'s weakest-cell threshold and stores it
// on the row's victim record, with +Inf standing in for "never flips".
func (m *Module) cacheThreshold(v *victim, bank, row int) float64 {
	thr, vulnerable := m.RowThreshold(bank, row)
	if !vulnerable {
		thr = math.Inf(1)
	}
	v.thr = thr
	return thr
}

// RowThreshold reports the flip threshold of (bank,row)'s weakest cell, and
// whether the row can flip at all.
func (m *Module) RowThreshold(bank, row int) (float64, bool) {
	if cells, ok := m.planted[victimKey(bank, row)]; ok {
		return cells[0].threshold, true
	}
	return m.cfg.Disturb.threshold(bank, row)
}

// WeakRows scans a bank for rows with thresholds at most maxUnits and
// returns them ordered weakest first. It models an attacker's (or test
// harness's) memory-profiling step.
func (m *Module) WeakRows(bank int, maxUnits float64, limit int) []int {
	type wr struct {
		row int
		t   float64
	}
	var out []wr
	for row := 0; row < m.cfg.Geometry.RowsPerBank; row++ {
		if t, ok := m.RowThreshold(bank, row); ok && t <= maxUnits {
			out = append(out, wr{row, t})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].t != out[j].t {
			return out[i].t < out[j].t
		}
		return out[i].row < out[j].row
	})
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	rows := make([]int, len(out))
	for i, w := range out {
		rows[i] = w.row
	}
	return rows
}

// VictimUnits reports the current disturbance accumulator of (bank,row),
// applying any pending lazy refresh first. Intended for tests and detectors
// with oracle access.
func (m *Module) VictimUnits(bank, row int, now sim.Cycles) float64 {
	if bank < 0 || bank >= len(m.disturbed) || row < 0 || row >= m.cfg.Geometry.RowsPerBank {
		return 0
	}
	bd := &m.disturbed[bank]
	if bd.vic == nil {
		return 0
	}
	v := &bd.vic[row]
	if r := m.lastScheduledRefresh(row, now); r > v.lastReset {
		return 0
	}
	return v.units
}

// lastScheduledRefresh returns the time of the most recent periodic-refresh
// sweep of the given row at or before now (0 if it has not been refreshed
// since the start of the simulation). The sweep is evaluated lazily so no
// per-tREFI events are needed.
func (m *Module) lastScheduledRefresh(row int, now sim.Cycles) sim.Cycles {
	cmds := uint64(m.cfg.Timing.RefreshCommands)
	var bin uint64
	if m.binShiftOK {
		bin = uint64(row) >> m.binShift
	} else {
		bin = uint64(row) / m.rowsPerRefCmd
	}
	kNow := m.refEpoch(now)
	if kNow < bin {
		return 0
	}
	var kLast uint64
	if m.cmdMaskOK {
		kLast = kNow - (kNow-bin)&m.cmdMask
	} else {
		kLast = kNow - (kNow-bin)%cmds
	}
	if f := m.fault; f != nil && f.cfg.RefreshSkipRate > 0 {
		// Walk back over skipped REF slots: a skipped sweep left the row's
		// charge (and disturbance accumulator) untouched, so the effective
		// last refresh is the most recent non-skipped slot.
		for i := 0; i < maxSkipWalk && f.skipsSlot(kLast); i++ {
			if kLast < cmds {
				return 0 // the row's very first sweep was skipped
			}
			kLast -= cmds
		}
	}
	return sim.Cycles(kLast) * m.trefi
}

// refreshStall returns how long an access arriving at now on the given rank
// must wait for an in-progress REF command to finish.
func (m *Module) refreshStall(rank int, now sim.Cycles) sim.Cycles {
	if now >= m.stallFreeFrom[rank] && now < m.stallFreeTo[rank] {
		return 0
	}
	t := uint64(now) + uint64(m.trefi) - uint64(m.refOffset[rank])
	phase := sim.Cycles(t % uint64(m.trefi))
	if phase < m.cfg.Timing.RFC {
		return m.cfg.Timing.RFC - phase
	}
	// phase in [RFC, tREFI): the whole stall-free remainder of this window is
	// now known; memoise it so the next accesses in the window skip the mod.
	m.stallFreeFrom[rank] = now - (phase - m.cfg.Timing.RFC)
	m.stallFreeTo[rank] = now + (m.trefi - phase)
	return 0
}

// NextRefreshSlot returns the next simulated time strictly derived from the
// refresh schedule at which some rank begins a REF command (the start of a
// refresh-stall window) at or after now; it is at most now+tREFI. The epoch
// planner uses it to bound batched runs so a horizon never overshoots a
// refresh boundary by more than one access.
func (m *Module) NextRefreshSlot(now sim.Cycles) sim.Cycles {
	next := now + m.trefi
	for r := range m.refOffset {
		phase := (now + m.trefi - m.refOffset[r]) % m.trefi
		if t := now + m.trefi - phase; t < next {
			next = t
		}
	}
	return next
}

// refEpoch returns uint64(t)/tREFI through the one-entry epoch cache.
func (m *Module) refEpoch(t sim.Cycles) uint64 {
	if t < m.epochStart || t >= m.epochEnd {
		m.setRefEpoch(t)
	}
	return m.epochK
}

func (m *Module) setRefEpoch(t sim.Cycles) {
	k := uint64(t) / uint64(m.trefi)
	m.epochK = k
	m.epochStart = sim.Cycles(k) * m.trefi
	m.epochEnd = m.epochStart + m.trefi
}

// sameRefEpoch reports whether a and b fall in the same refresh epoch
// (uint64(a)/tREFI == uint64(b)/tREFI), consulting the epoch cache. Epoch
// intervals partition time, so one timestamp inside the cached interval and
// one outside decides "different" without dividing.
func (m *Module) sameRefEpoch(a, b sim.Cycles) bool {
	aIn := a >= m.epochStart && a < m.epochEnd
	bIn := b >= m.epochStart && b < m.epochEnd
	switch {
	case aIn && bIn:
		return true
	case aIn || bIn:
		return false
	default:
		m.setRefEpoch(b)
		return a >= m.epochStart && a < m.epochEnd
	}
}

// Access performs one read or write of the physical address at simulated
// time now and returns its latency and classification.
func (m *Module) Access(pa uint64, write bool, now sim.Cycles) AccessResult {
	var c Coord
	if m.linMap != nil {
		c = m.linMap.Map(pa)
	} else {
		c = m.mapper.Map(pa)
	}
	return m.AccessCoord(c, write, now)
}

// AccessCoord is Access for a pre-decoded coordinate.
func (m *Module) AccessCoord(c Coord, write bool, now sim.Cycles) AccessResult {
	// Row-buffer-hit fast path: the open row matches, the rank is provably
	// outside any refresh-stall window, no REF boundary was crossed since
	// the bank's last access, and neither contention nor the command engine
	// is in play. Every condition is a pure read, so falling through runs
	// the general path with no state disturbed; when all hold, the general
	// path would perform exactly these updates.
	if b := &m.banks[c.Bank]; b.openRow == c.Row && m.engine == nil && !m.cfg.Contention {
		rank := m.cfg.Geometry.Rank(c.Bank)
		if now >= m.stallFreeFrom[rank] && now < m.stallFreeTo[rank] &&
			now >= m.epochStart && now < m.epochEnd &&
			b.lastAccess >= m.epochStart && b.lastAccess < m.epochEnd {
			if write {
				m.stats.Writes++
			} else {
				m.stats.Reads++
			}
			m.stats.RowHits++
			b.lastAccess = now
			return AccessResult{Coord: c, RowHit: true, Latency: m.cfg.Timing.RowHit}
		}
	}
	if write {
		m.stats.Writes++
	} else {
		m.stats.Reads++
	}
	stall := m.refreshStall(m.cfg.Geometry.Rank(c.Bank), now)
	if stall > 0 {
		m.stats.RefreshStalls++
		m.stats.StallCycles += stall
		now += stall
	}
	b := &m.banks[c.Bank]
	if m.cfg.Contention && b.busyUntil > now {
		queue := b.busyUntil - now
		m.stats.BankQueue += queue
		stall += queue
		now = b.busyUntil
	}
	// An auto-refresh command requires all banks precharged, so any REF
	// since the bank's last access closed its open row.
	if b.openRow >= 0 && !m.sameRefEpoch(now, b.lastAccess) {
		b.openRow = -1
	}
	b.lastAccess = now
	res := AccessResult{Coord: c, Stall: stall}
	rank := m.cfg.Geometry.Rank(c.Bank)
	switch {
	case b.openRow == c.Row:
		m.stats.RowHits++
		res.RowHit = true
		res.Latency = stall + m.latency(c.Bank, rank, true, false, now)
	case m.interceptor != nil && m.interceptor(c, now):
		// Served from a controller-side buffer: no activation occurs.
		res.RowHit = true
		res.Latency = stall + m.latency(c.Bank, rank, true, false, now)
	case b.openRow < 0:
		m.stats.RowMisses++
		res.Activated = true
		res.Latency = stall + m.latency(c.Bank, rank, false, false, now)
	default:
		m.stats.RowConflicts++
		res.Activated = true
		res.Latency = stall + m.latency(c.Bank, rank, false, true, now)
	}
	if m.cfg.Contention {
		b.busyUntil = now + res.Latency - stall
	}
	if res.Activated {
		m.activate(c, now)
	}
	return res
}

// latency computes the access latency via the fixed model or, when
// configured, the command-level engine.
func (m *Module) latency(bank, rank int, rowHit, openRow bool, now sim.Cycles) sim.Cycles {
	if m.engine == nil {
		switch {
		case rowHit:
			return m.cfg.Timing.RowHit
		case openRow:
			return m.cfg.Timing.RowConflict
		default:
			return m.cfg.Timing.RowClosed
		}
	}
	data := m.engine.access(bank, rank, rowHit, openRow, now)
	return data - now
}

// RefreshRow refreshes one row directly (the path used by hardware defenses
// like TRR/PARA, which issue internal refreshes without a CPU read). It
// clears the row's disturbance accumulator and counts as an activation for
// neighbouring rows, exactly like a read would.
func (m *Module) RefreshRow(bank, row int, now sim.Cycles) {
	if bank < 0 || bank >= len(m.banks) || row < 0 || row >= m.cfg.Geometry.RowsPerBank {
		return
	}
	m.activate(Coord{Bank: bank, Row: row}, now)
}

// activate performs the disturbance bookkeeping for an activation of c.Row.
func (m *Module) activate(c Coord, now sim.Cycles) {
	b := &m.banks[c.Bank]
	b.openRow = c.Row
	b.lastActRow = c.Row
	b.acts++
	m.stats.Activations++

	// The activated row's own charge is restored. An unallocated bank has no
	// accumulated charge anywhere, so there is nothing to reset (and for an
	// allocated bank, resetting a still-zero accumulator is harmless: only
	// lastReset changes, and simulated time is monotone, so every later
	// refresh-sweep comparison decides the same way).
	if bd := &m.disturbed[c.Bank]; bd.vic != nil {
		v := &bd.vic[c.Row]
		v.units = 0
		v.lastReset = now
		v.lastSide = 0
		v.flipped = 0
	}

	// Disturb the neighbours.
	m.disturb(c.Bank, c.Row-1, +1, 1, now)
	m.disturb(c.Bank, c.Row+1, -1, 1, now)
	if far := m.cfg.Disturb.FarCouplingRatio; far > 0 {
		m.disturb(c.Bank, c.Row-2, +1, far, now)
		m.disturb(c.Bank, c.Row+2, -1, far, now)
	}

	if f := m.fault; f != nil && (f.cfg.ECCCorrectableRate > 0 || f.cfg.ECCUncorrectableRate > 0) {
		m.injectTransient(c, now)
	}

	for _, h := range m.hooks {
		h(c, now)
	}
}

// disturb deposits units into victim row `row` of `bank` due to an
// activation of the neighbour on the given side (+1: the aggressor is the
// row above the victim; -1: below).
func (m *Module) disturb(bank, row int, side int8, scale float64, now sim.Cycles) {
	if row < 0 || row >= m.cfg.Geometry.RowsPerBank {
		return
	}
	bd := &m.disturbed[bank]
	if bd.vic == nil {
		bd.vic = make([]victim, m.cfg.Geometry.RowsPerBank)
	}
	v := &bd.vic[row]
	// Lazy periodic-refresh reset.
	if r := m.lastScheduledRefresh(row, now); r > v.lastReset {
		v.units = 0
		v.lastReset = r
		v.lastSide = 0
		v.flipped = 0
	}
	units := scale
	// Alternation bonus: the victim's previous disturbance came from its
	// other neighbour (double-sided hammering discharges super-linearly).
	if scale == 1 && v.lastSide != 0 && v.lastSide != side {
		units += m.cfg.Disturb.AlternationBonus
	}
	if scale == 1 {
		v.lastSide = side
	}
	v.units += units
	// Fast path: compare against the cached threshold and materialise the
	// cell list only once the weakest cell's threshold has been reached (the
	// hot path runs on every activation).
	thr := v.thr
	if thr == 0 {
		thr = m.cacheThreshold(v, bank, row)
	}
	if v.units < thr {
		return
	}
	cells := m.rowCells(bank, row)
	for int(v.flipped) < len(cells) && v.units >= cells[v.flipped].threshold {
		m.flips = append(m.flips, BitFlip{
			Bank: bank,
			Row:  row,
			Bit:  cells[v.flipped].bit,
			Time: now,
		})
		v.flipped++
	}
}

// OpenRow reports the currently open row in a bank (-1 if precharged).
func (m *Module) OpenRow(bank int) int { return m.banks[bank].openRow }

// BankActivations reports the number of activations a bank has seen.
func (m *Module) BankActivations(bank int) uint64 { return m.banks[bank].acts }
