package dram

import (
	"testing"

	"repro/internal/sim"
)

// benchModule builds the paper's default module.
func benchModule(b *testing.B) *Module {
	b.Helper()
	m, err := New(DefaultConfig(sim.DefaultFreq))
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkHotPath measures Module.Access on the activation-heavy patterns
// the simulator spends its time in: double-sided hammering (every access a
// row conflict, disturbing planted and unplanted neighbours), a row-buffer
// streaming workload, and a scan across banks.
func BenchmarkHotPath(b *testing.B) {
	b.Run("hammer", func(b *testing.B) {
		m := benchModule(b)
		// Double-sided pair around a planted victim row.
		if err := m.PlantWeakRow(0, 1000, 1<<40); err != nil {
			b.Fatal(err)
		}
		above := m.Mapper().Unmap(Coord{Bank: 0, Row: 999})
		below := m.Mapper().Unmap(Coord{Bank: 0, Row: 1001})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			now := sim.Cycles(i) * 320
			m.Access(above, false, now)
			m.Access(below, false, now+160)
		}
	})
	b.Run("hammer-unplanted", func(b *testing.B) {
		// Same pattern with no planted victim: the common case for every
		// workload access that happens to activate rows.
		m := benchModule(b)
		above := m.Mapper().Unmap(Coord{Bank: 1, Row: 2000})
		below := m.Mapper().Unmap(Coord{Bank: 1, Row: 2002})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			now := sim.Cycles(i) * 320
			m.Access(above, false, now)
			m.Access(below, false, now+160)
		}
	})
	b.Run("row-hit-stream", func(b *testing.B) {
		// Sequential columns within one row: the row-buffer-hit fast path.
		m := benchModule(b)
		base := m.Mapper().Unmap(Coord{Bank: 2, Row: 500})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Access(base+uint64(i%128)*64, false, sim.Cycles(i)*100)
		}
	})
	b.Run("bank-scan", func(b *testing.B) {
		// Round-robin activations across every bank and many rows.
		m := benchModule(b)
		g := m.Config().Geometry
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c := Coord{Bank: i % g.Banks(), Row: (i * 7) % g.RowsPerBank}
			m.AccessCoord(c, false, sim.Cycles(i)*150)
		}
	})
}

// TestAccessSteadyStateAllocs pins the allocation-free property of the hot
// path: steady-state hammering (victim accumulators already materialised,
// no flips being recorded) must not allocate.
func TestAccessSteadyStateAllocs(t *testing.T) {
	m, err := New(DefaultConfig(sim.DefaultFreq))
	if err != nil {
		t.Fatal(err)
	}
	above := m.Mapper().Unmap(Coord{Bank: 0, Row: 999})
	below := m.Mapper().Unmap(Coord{Bank: 0, Row: 1001})
	// Warm up: materialise the victim accumulators of both neighbours.
	m.Access(above, false, 0)
	m.Access(below, false, 160)
	now := sim.Cycles(320)
	allocs := testing.AllocsPerRun(1000, func() {
		m.Access(above, false, now)
		m.Access(below, false, now+160)
		now += 320
	})
	if allocs != 0 {
		t.Errorf("steady-state Module.Access allocates %.1f times per run, want 0", allocs)
	}
}
