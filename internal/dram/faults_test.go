package dram

import (
	"testing"

	"repro/internal/sim"
)

func TestInjectFaultsValidates(t *testing.T) {
	m := mustModule(t, testConfig())
	if err := m.InjectFaults(FaultConfig{RefreshSkipRate: 2}, sim.NewRand(1)); err == nil {
		t.Error("skip rate 2 accepted")
	}
	if err := m.InjectFaults(FaultConfig{ECCCorrectableRate: -0.5}, sim.NewRand(1)); err == nil {
		t.Error("negative ECC rate accepted")
	}
}

// TestRefreshSkipPersistsDisturbance: a healthy module's periodic sweep
// clears a victim's accumulated disturbance; a module that skips its REF
// slots leaves the charge leaking.
func TestRefreshSkipPersistsDisturbance(t *testing.T) {
	run := func(skip float64) (float64, FaultStats) {
		cfg := testConfig()
		m := mustModule(t, cfg)
		if skip > 0 {
			if err := m.InjectFaults(FaultConfig{RefreshSkipRate: skip}, sim.NewRand(9)); err != nil {
				t.Fatal(err)
			}
		}
		const victimRow = 100
		m.PlantWeakRow(0, victimRow, 1000)
		agg := m.Mapper().Unmap(Coord{Bank: 0, Row: victimRow + 1, Col: 0})
		other := m.Mapper().Unmap(Coord{Bank: 0, Row: 3000, Col: 0})
		var now sim.Cycles
		for i := 0; i < 600; i++ {
			m.Access(agg, false, now)
			now += 200
			m.Access(other, false, now)
			now += 200
		}
		// Jump a full refresh period: every row has had a scheduled sweep.
		now += cfg.Timing.RefreshPeriod
		return m.VictimUnits(0, victimRow, now), m.FaultStats()
	}
	if u, _ := run(0); u != 0 {
		t.Errorf("healthy module kept %g units past a full refresh period", u)
	}
	u, st := run(1)
	if u == 0 {
		t.Error("skip-rate-1 module cleared disturbance despite skipping every REF slot")
	}
	if st.SkippedRefreshes == 0 {
		t.Error("no skipped REF slots counted at rate 1")
	}
}

// TestTransientFlipsStaySeparate: injected transient errors surface through
// TransientFlips and the fault counters, never through the hammer-flip
// observables.
func TestTransientFlipsStaySeparate(t *testing.T) {
	m := mustModule(t, testConfig())
	if err := m.InjectFaults(FaultConfig{ECCCorrectableRate: 0.01, ECCUncorrectableRate: 0.005},
		sim.NewRand(3)); err != nil {
		t.Fatal(err)
	}
	a := m.Mapper().Unmap(Coord{Bank: 0, Row: 10, Col: 0})
	b := m.Mapper().Unmap(Coord{Bank: 0, Row: 2000, Col: 0})
	var now sim.Cycles
	for i := 0; i < 2000; i++ {
		m.Access(a, false, now)
		now += 200
		m.Access(b, false, now)
		now += 200
	}
	st := m.FaultStats()
	if st.TransientSingle == 0 || st.TransientDouble == 0 {
		t.Fatalf("no transient events after 4000 activations: %+v", st)
	}
	flips := m.TransientFlips()
	if want := int(st.TransientSingle + 2*st.TransientDouble); len(flips) != want {
		t.Errorf("transient flips = %d, want %d (%+v)", len(flips), want, st)
	}
	if m.FlipCount() != 0 {
		t.Errorf("transient errors leaked into hammer flips: %d", m.FlipCount())
	}
}

// TestTransientDoubleHitsOneWord: a double event's two flips land in the
// same 64-bit word of the same row — the SECDED-defeating failure mode.
func TestTransientDoubleHitsOneWord(t *testing.T) {
	m := mustModule(t, testConfig())
	if err := m.InjectFaults(FaultConfig{ECCUncorrectableRate: 0.01}, sim.NewRand(4)); err != nil {
		t.Fatal(err)
	}
	a := m.Mapper().Unmap(Coord{Bank: 0, Row: 10, Col: 0})
	b := m.Mapper().Unmap(Coord{Bank: 0, Row: 2000, Col: 0})
	var now sim.Cycles
	for i := 0; i < 2000; i++ {
		m.Access(a, false, now)
		now += 200
		m.Access(b, false, now)
		now += 200
	}
	flips := m.TransientFlips()
	if len(flips) == 0 {
		t.Fatal("no transient flips at a 1% double rate")
	}
	if len(flips)%2 != 0 {
		t.Fatalf("double-only faults produced an odd flip count %d", len(flips))
	}
	for i := 0; i < len(flips); i += 2 {
		f1, f2 := flips[i], flips[i+1]
		if f1.Bank != f2.Bank || f1.Row != f2.Row {
			t.Fatalf("pair %d spans rows: %+v vs %+v", i/2, f1, f2)
		}
		if f1.Bit/64 != f2.Bit/64 {
			t.Errorf("pair %d spans words: bits %d and %d", i/2, f1.Bit, f2.Bit)
		}
		if f1.Bit == f2.Bit {
			t.Errorf("pair %d hit the same bit %d twice", i/2, f1.Bit)
		}
	}
}
