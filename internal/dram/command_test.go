package dram

import (
	"testing"

	"repro/internal/sim"
)

func detailedModule(t *testing.T) *Module {
	t.Helper()
	cfg := testConfig()
	cfg.Detailed = Detailed(sim.DefaultFreq)
	return mustModule(t, cfg)
}

func TestDetailedTimingValidate(t *testing.T) {
	good := Detailed(sim.DefaultFreq)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	var nilT *DetailedTiming
	if err := nilT.Validate(); err != nil {
		t.Error("nil detailed timing should validate")
	}
	bad := Detailed(sim.DefaultFreq)
	bad.TRC = bad.TRAS // < tRAS + tRP
	if err := bad.Validate(); err == nil {
		t.Error("tRC < tRAS+tRP accepted")
	}
	bad2 := &DetailedTiming{}
	if err := bad2.Validate(); err == nil {
		t.Error("zeroed detailed timing accepted")
	}
}

func TestDetailedRowHitFasterThanConflict(t *testing.T) {
	m := detailedModule(t)
	a := m.Mapper().Unmap(Coord{Bank: 0, Row: 10, Col: 0})
	b := m.Mapper().Unmap(Coord{Bank: 0, Row: 20, Col: 0})
	now := sim.Cycles(10_000)
	first := m.Access(a, false, now)
	now += first.Latency + 1000
	hit := m.Access(a, false, now)
	now += hit.Latency + 1000
	conflict := m.Access(b, false, now)
	if !hit.RowHit || conflict.RowHit {
		t.Fatalf("classification wrong: %+v %+v", hit, conflict)
	}
	if hit.Latency >= conflict.Latency {
		t.Errorf("row hit (%d) not faster than conflict (%d)", hit.Latency, conflict.Latency)
	}
	// The conflict includes PRE + ACT + RCD + CL: at least tRP+tRCD+tCL.
	dt := m.Config().Detailed
	if min := dt.TRP + dt.TRCD + dt.TCL; conflict.Latency < min {
		t.Errorf("conflict latency %d below command minimum %d", conflict.Latency, min)
	}
}

// TestDetailedTRCBoundsHammerRate: back-to-back conflicting accesses to one
// bank cannot activate faster than tRC.
func TestDetailedTRCBoundsHammerRate(t *testing.T) {
	m := detailedModule(t)
	dt := m.Config().Detailed
	a := m.Mapper().Unmap(Coord{Bank: 0, Row: 10, Col: 0})
	b := m.Mapper().Unmap(Coord{Bank: 0, Row: 20, Col: 0})
	var now sim.Cycles = 10_000
	const n = 200
	start := now
	for i := 0; i < n; i++ {
		res := m.Access(a, false, now)
		now += res.Latency
		res = m.Access(b, false, now)
		now += res.Latency
	}
	perAct := float64(now-start) / float64(2*n)
	if perAct < float64(dt.TRC) {
		t.Errorf("average activation interval %.0f cycles beats tRC %d", perAct, dt.TRC)
	}
	// And it should not be wildly slower either (same bank: tRC is the
	// binding constraint, plus CL/bus).
	if perAct > float64(dt.TRC+dt.TCL+dt.TBus+dt.TRP) {
		t.Errorf("average activation interval %.0f cycles is unexpectedly slow", perAct)
	}
}

// TestDetailedTFAWLimitsBankParallelism: rapid ACTs spread across many
// banks of one rank are throttled to four per tFAW window.
func TestDetailedTFAWLimitsBankParallelism(t *testing.T) {
	cfg := testConfig()
	cfg.Detailed = Detailed(sim.DefaultFreq)
	// Make tFAW clearly binding over tRRD.
	cfg.Detailed.TFAW = cfg.Detailed.TRRD * 12
	m := mustModule(t, cfg)
	e := m.engine
	now := sim.Cycles(100_000)
	var acts []sim.Cycles
	for i := 0; i < 12; i++ {
		bank := i % 8 // all in rank 0
		e.access(bank, 0, false, false, now)
		acts = append(acts, e.banks[bank].lastAct)
	}
	// Within any tFAW window there must be at most 4 ACTs.
	for i := 4; i < len(acts); i++ {
		if acts[i]-acts[i-4] < cfg.Detailed.TFAW {
			t.Fatalf("ACTs %d and %d only %d cycles apart; tFAW=%d violated",
				i-4, i, acts[i]-acts[i-4], cfg.Detailed.TFAW)
		}
	}
}

// TestDetailedModeStillFlips: the command engine changes latencies, not the
// disturbance physics — hammering still flips, a bit slower.
func TestDetailedModeStillFlips(t *testing.T) {
	m := detailedModule(t)
	m.PlantWeakRow(0, 100, 2000)
	lo := m.Mapper().Unmap(Coord{Bank: 0, Row: 99, Col: 0})
	hi := m.Mapper().Unmap(Coord{Bank: 0, Row: 101, Col: 0})
	var now sim.Cycles = 1
	for i := 0; i < 1500 && m.FlipCount() == 0; i++ {
		r := m.Access(lo, false, now)
		now += r.Latency
		r = m.Access(hi, false, now)
		now += r.Latency
	}
	if m.FlipCount() == 0 {
		t.Error("no flip under detailed timing")
	}
}

// TestDetailedAgreesWithSimpleOnOrdering: both models preserve
// hit < closed < conflict ordering.
func TestDetailedAgreesWithSimpleOnOrdering(t *testing.T) {
	for _, detailed := range []bool{false, true} {
		cfg := testConfig()
		if detailed {
			cfg.Detailed = Detailed(sim.DefaultFreq)
		}
		m := mustModule(t, cfg)
		a := m.Mapper().Unmap(Coord{Bank: 3, Row: 7, Col: 0})
		b := m.Mapper().Unmap(Coord{Bank: 3, Row: 9, Col: 0})
		now := sim.Cycles(50_000)
		closed := m.Access(a, false, now)
		now += closed.Latency + 500
		hit := m.Access(a, false, now)
		now += hit.Latency + 500
		conflict := m.Access(b, false, now)
		if !(hit.Latency < closed.Latency && closed.Latency <= conflict.Latency) {
			t.Errorf("detailed=%v: ordering violated: hit=%d closed=%d conflict=%d",
				detailed, hit.Latency, closed.Latency, conflict.Latency)
		}
	}
}

// TestBankContentionSerialises: with contention on, interleaved accesses to
// one bank queue behind each other, while different banks proceed in
// parallel.
func TestBankContentionSerialises(t *testing.T) {
	run := func(contend bool, sameBank bool) sim.Cycles {
		cfg := testConfig()
		cfg.Contention = contend
		m := mustModule(t, cfg)
		a := m.Mapper().Unmap(Coord{Bank: 0, Row: 10, Col: 0})
		bBank := 1
		if sameBank {
			bBank = 0
		}
		b := m.Mapper().Unmap(Coord{Bank: bBank, Row: 20, Col: 0})
		// Two "cores" issuing at the same instants.
		var total sim.Cycles
		for i := 0; i < 100; i++ {
			now := sim.Cycles(i * 50) // faster than service time
			r1 := m.Access(a, false, now)
			r2 := m.Access(b, false, now)
			total += r1.Latency + r2.Latency
		}
		return total
	}
	offSame := run(false, true)
	onSame := run(true, true)
	if onSame <= offSame {
		t.Errorf("contention did not add latency on one bank: %d vs %d", onSame, offSame)
	}
	onDiff := run(true, false)
	if onDiff >= onSame {
		t.Errorf("different banks should queue less than one bank: %d vs %d", onDiff, onSame)
	}
}

func TestBankQueueStatAccounted(t *testing.T) {
	cfg := testConfig()
	cfg.Contention = true
	m := mustModule(t, cfg)
	a := m.Mapper().Unmap(Coord{Bank: 0, Row: 10, Col: 0})
	b := m.Mapper().Unmap(Coord{Bank: 0, Row: 20, Col: 0})
	m.Access(a, false, 1000)
	m.Access(b, false, 1001) // lands while the bank is busy
	if m.Stats().BankQueue == 0 {
		t.Error("no bank-queue cycles recorded")
	}
}
