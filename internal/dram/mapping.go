package dram

import (
	"fmt"
	"math/bits"
)

// Mapper translates physical addresses to DRAM coordinates. ANVIL's kernel
// module ships with "a reverse engineered physical address to DRAM row and
// bank mapping scheme" (§3.3); Mapper is that scheme's seat in the simulator.
// Both the memory system and the detector use the same Mapper, mirroring the
// real setup where the reverse-engineered map matched the controller's.
type Mapper interface {
	// Map decodes a physical byte address into a coordinate.
	Map(pa uint64) Coord
	// Unmap encodes a coordinate back to the base physical address of the
	// given column. Unmap(Map(pa)) == pa for in-range addresses.
	Unmap(c Coord) uint64
	// Geometry reports the geometry the mapper was built for.
	Geometry() Geometry
}

// LinearMapper is the straightforward bit-sliced address map:
//
//	pa = | row | rank | bank | column |
//
// with an optional XOR of low row bits into the bank index (bank hashing, as
// on Sandy Bridge class controllers, which spreads consecutive rows across
// banks to reduce conflicts). Row numbers are consecutive within a bank and
// physically adjacent rows carry consecutive numbers, matching the paper's
// assumption "that sequentially numbered rows are physically adjacent".
type LinearMapper struct {
	geom     Geometry
	colBits  int
	bankBits int
	rankBits int
	rowBits  int
	bankHash bool
}

// NewLinearMapper builds a mapper for the geometry. All geometry dimensions
// must be powers of two. bankHash enables XOR bank indexing.
func NewLinearMapper(g Geometry, bankHash bool) (*LinearMapper, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	isPow2 := func(v int) bool { return v > 0 && v&(v-1) == 0 }
	if !isPow2(g.BanksPerRank) || !isPow2(g.Ranks) || !isPow2(g.RowsPerBank) {
		return nil, fmt.Errorf("dram: linear mapper requires power-of-two geometry, got %+v", g)
	}
	return &LinearMapper{
		geom:     g,
		colBits:  bits.TrailingZeros(uint(g.RowBytes)),
		bankBits: bits.TrailingZeros(uint(g.BanksPerRank)),
		rankBits: bits.TrailingZeros(uint(g.Ranks)),
		rowBits:  bits.TrailingZeros(uint(g.RowsPerBank)),
		bankHash: bankHash,
	}, nil
}

// Geometry implements Mapper.
func (m *LinearMapper) Geometry() Geometry { return m.geom }

func (m *LinearMapper) hash(bank, row int) int {
	if !m.bankHash {
		return bank
	}
	return bank ^ (row & (m.geom.BanksPerRank - 1))
}

// Map implements Mapper.
func (m *LinearMapper) Map(pa uint64) Coord {
	col := int(pa & uint64(m.geom.RowBytes-1))
	pa >>= uint(m.colBits)
	bank := int(pa & uint64(m.geom.BanksPerRank-1))
	pa >>= uint(m.bankBits)
	rank := int(pa & uint64(m.geom.Ranks-1))
	pa >>= uint(m.rankBits)
	row := int(pa & uint64(m.geom.RowsPerBank-1))
	bank = m.hash(bank, row)
	return Coord{Bank: rank*m.geom.BanksPerRank + bank, Row: row, Col: col}
}

// Unmap implements Mapper.
func (m *LinearMapper) Unmap(c Coord) uint64 {
	rank := c.Bank / m.geom.BanksPerRank
	bank := c.Bank % m.geom.BanksPerRank
	// the XOR hash is an involution for fixed row
	bank = m.hash(bank, c.Row)
	pa := uint64(c.Row)
	pa = pa<<uint(m.rankBits) | uint64(rank)
	pa = pa<<uint(m.bankBits) | uint64(bank)
	pa = pa<<uint(m.colBits) | uint64(c.Col)
	return pa
}

var _ Mapper = (*LinearMapper)(nil)

// XORMapper generalises the XOR-function address maps reverse engineered on
// Intel controllers (Hund et al. [12] for Haswell; the paper's authors
// found "a slightly modified version of this mapping" on Sandy Bridge):
// each bank-index bit is the parity of the physical address ANDed with a
// mask. Row and column decode as in the linear map. The detector and the
// attack both carry such a map; a mismatch between the carried map and the
// controller's real one is what TestWrongMapperDegradesProtection studies.
type XORMapper struct {
	linear    *LinearMapper
	bankMasks []uint64 // one mask per bank-index bit
}

// NewXORMapper builds a mapper whose bank bits are parities of masked
// address bits. masks must have exactly log2(BanksPerRank) entries.
func NewXORMapper(g Geometry, masks []uint64) (*XORMapper, error) {
	lin, err := NewLinearMapper(g, false)
	if err != nil {
		return nil, err
	}
	if 1<<len(masks) != g.BanksPerRank {
		return nil, fmt.Errorf("dram: need %d bank masks for %d banks, got %d",
			bits.TrailingZeros(uint(g.BanksPerRank)), g.BanksPerRank, len(masks))
	}
	for i, m := range masks {
		if m == 0 {
			return nil, fmt.Errorf("dram: bank mask %d is zero", i)
		}
	}
	return &XORMapper{linear: lin, bankMasks: masks}, nil
}

// SandyBridgeMasks returns bank-bit XOR masks in the style of the
// reverse-engineered Sandy Bridge map: each bank bit folds its plain
// position with a row bit, spreading consecutive rows across banks.
func SandyBridgeMasks(g Geometry) []uint64 {
	n := bits.TrailingZeros(uint(g.BanksPerRank))
	colBits := bits.TrailingZeros(uint(g.RowBytes))
	rowShift := colBits + n + bits.TrailingZeros(uint(g.Ranks))
	masks := make([]uint64, n)
	for i := 0; i < n; i++ {
		masks[i] = 1<<uint(colBits+i) | 1<<uint(rowShift+i)
	}
	return masks
}

// Geometry implements Mapper.
func (m *XORMapper) Geometry() Geometry { return m.linear.geom }

func parity(x uint64) int { return bits.OnesCount64(x) & 1 }

// Map implements Mapper.
func (m *XORMapper) Map(pa uint64) Coord {
	c := m.linear.Map(pa)
	bank := 0
	for i, mask := range m.bankMasks {
		bank |= parity(pa&mask) << uint(i)
	}
	rank := c.Bank / m.linear.geom.BanksPerRank
	return Coord{Bank: rank*m.linear.geom.BanksPerRank + bank, Row: c.Row, Col: c.Col}
}

// Unmap implements Mapper: it solves for the plain bank bits that make the
// XOR functions produce the requested bank. Because each mask includes the
// bank bit's own position (as SandyBridgeMasks guarantees), the solution is
// direct: plainBit = wantedBit XOR parity(rest of the masked bits).
func (m *XORMapper) Unmap(c Coord) uint64 {
	geom := m.linear.geom
	rank := c.Bank / geom.BanksPerRank
	want := c.Bank % geom.BanksPerRank
	// Start from the address with plain bank bits zero.
	base := m.linear.Unmap(Coord{Bank: rank * geom.BanksPerRank, Row: c.Row, Col: c.Col})
	colBits := bits.TrailingZeros(uint(geom.RowBytes))
	plain := 0
	for i, mask := range m.bankMasks {
		ownBit := uint64(1) << uint(colBits+i)
		rest := parity(base & mask &^ ownBit)
		bit := (want >> uint(i) & 1) ^ rest
		plain |= bit << uint(i)
	}
	return base | uint64(plain)<<uint(colBits)
}

var _ Mapper = (*XORMapper)(nil)
