package dram

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sim"
)

func testConfig() Config {
	cfg := DefaultConfig(sim.DefaultFreq)
	// Small geometry keeps scans fast in tests.
	cfg.Geometry = Geometry{Ranks: 2, BanksPerRank: 8, RowsPerBank: 4096, RowBytes: 8192}
	return cfg
}

// mustMapper builds a linear mapper, failing the test on error.
func mustMapper(tb testing.TB, g Geometry, bankHash bool) *LinearMapper {
	tb.Helper()
	m, err := NewLinearMapper(g, bankHash)
	if err != nil {
		tb.Fatal(err)
	}
	return m
}

func mustModule(t *testing.T, cfg Config) *Module {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

func TestGeometryValidate(t *testing.T) {
	good := DefaultGeometry()
	if err := good.Validate(); err != nil {
		t.Fatalf("default geometry invalid: %v", err)
	}
	bad := []Geometry{
		{Ranks: 0, BanksPerRank: 8, RowsPerBank: 16, RowBytes: 8192},
		{Ranks: 1, BanksPerRank: 0, RowsPerBank: 16, RowBytes: 8192},
		{Ranks: 1, BanksPerRank: 8, RowsPerBank: 0, RowBytes: 8192},
		{Ranks: 1, BanksPerRank: 8, RowsPerBank: 16, RowBytes: 1000},
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("case %d: bad geometry validated: %+v", i, g)
		}
	}
}

func TestGeometrySize(t *testing.T) {
	g := DefaultGeometry()
	if got := g.Size(); got != 4<<30 {
		t.Errorf("Size = %d, want 4GiB", got)
	}
	if g.Banks() != 16 {
		t.Errorf("Banks = %d, want 16", g.Banks())
	}
	if g.Rank(0) != 0 || g.Rank(7) != 0 || g.Rank(8) != 1 || g.Rank(15) != 1 {
		t.Error("Rank mapping wrong")
	}
}

func TestTimingDefaults(t *testing.T) {
	tm := DefaultTiming(sim.DefaultFreq)
	if err := tm.Validate(); err != nil {
		t.Fatalf("default timing invalid: %v", err)
	}
	// 64ms / 8192 commands = 7.8125us between REFs.
	trefi := sim.DefaultFreq.Duration(tm.TREFI())
	if trefi < 7800*time.Nanosecond || trefi > 7813*time.Nanosecond {
		t.Errorf("tREFI = %v, want ~7.8125us", trefi)
	}
	double, err := tm.RefreshScaled(2)
	if err != nil {
		t.Fatal(err)
	}
	if double.RefreshPeriod != tm.RefreshPeriod/2 {
		t.Error("RefreshScaled(2) did not halve the period")
	}
}

func TestTimingValidateRejectsDisorder(t *testing.T) {
	tm := DefaultTiming(sim.DefaultFreq)
	tm.RowHit = tm.RowConflict + 1
	if err := tm.Validate(); err == nil {
		t.Error("disordered latencies validated")
	}
}

func TestLinearMapperRoundTrip(t *testing.T) {
	for _, hash := range []bool{false, true} {
		m := mustMapper(t, DefaultGeometry(), hash)
		err := quick.Check(func(pa uint64) bool {
			pa %= m.Geometry().Size()
			return m.Unmap(m.Map(pa)) == pa
		}, &quick.Config{MaxCount: 2000})
		if err != nil {
			t.Errorf("hash=%v: %v", hash, err)
		}
	}
}

func TestLinearMapperAdjacency(t *testing.T) {
	// Consecutive rows at the same bank/col must differ by exactly the
	// row-pitch in physical address space when hashing is off.
	m := mustMapper(t, DefaultGeometry(), false)
	a := m.Unmap(Coord{Bank: 3, Row: 100, Col: 0})
	b := m.Unmap(Coord{Bank: 3, Row: 101, Col: 0})
	pitch := uint64(DefaultGeometry().RowBytes * DefaultGeometry().BanksPerRank * DefaultGeometry().Ranks)
	if b-a != pitch {
		t.Errorf("row pitch = %d, want %d", b-a, pitch)
	}
	// Same row, consecutive columns are consecutive addresses.
	c0 := m.Unmap(Coord{Bank: 3, Row: 100, Col: 0})
	c1 := m.Unmap(Coord{Bank: 3, Row: 100, Col: 1})
	if c1-c0 != 1 {
		t.Errorf("col pitch = %d, want 1", c1-c0)
	}
}

func TestLinearMapperRejectsNonPow2(t *testing.T) {
	_, err := NewLinearMapper(Geometry{Ranks: 3, BanksPerRank: 8, RowsPerBank: 16, RowBytes: 8192}, false)
	if err == nil {
		t.Error("non-power-of-two geometry accepted")
	}
}

func TestRowBufferStateMachine(t *testing.T) {
	m := mustModule(t, testConfig())
	mapper := m.Mapper()
	a := mapper.Unmap(Coord{Bank: 2, Row: 10, Col: 0})
	b := mapper.Unmap(Coord{Bank: 2, Row: 20, Col: 0})

	r1 := m.Access(a, false, 1000)
	if r1.RowHit || !r1.Activated {
		t.Errorf("first access should activate: %+v", r1)
	}
	r2 := m.Access(a, false, 2000)
	if !r2.RowHit || r2.Activated {
		t.Errorf("second access to same row should row-hit: %+v", r2)
	}
	r3 := m.Access(b, false, 3000)
	if r3.RowHit || !r3.Activated {
		t.Errorf("different row should conflict: %+v", r3)
	}
	if r3.Latency < r2.Latency {
		t.Error("conflict should cost at least as much as a hit")
	}
	st := m.Stats()
	if st.RowHits != 1 || st.RowMisses != 1 || st.RowConflicts != 1 {
		t.Errorf("stats = %+v", st)
	}
	if m.OpenRow(2) != 20 {
		t.Errorf("open row = %d, want 20", m.OpenRow(2))
	}
}

func TestBanksAreIndependent(t *testing.T) {
	m := mustModule(t, testConfig())
	mapper := m.Mapper()
	a := mapper.Unmap(Coord{Bank: 0, Row: 5, Col: 0})
	b := mapper.Unmap(Coord{Bank: 1, Row: 9, Col: 0})
	m.Access(a, false, 1000)
	m.Access(b, false, 2000)
	ra := m.Access(a, false, 3000)
	if !ra.RowHit {
		t.Error("bank 0 row should still be open after bank 1 access")
	}
}

func TestRefreshStallWindow(t *testing.T) {
	cfg := testConfig()
	cfg.StaggerRanks = false
	m := mustModule(t, cfg)
	trefi := cfg.Timing.TREFI()
	pa := m.Mapper().Unmap(Coord{Bank: 0, Row: 1, Col: 0})

	// Access right at the start of a REF window: stalled for the full tRFC.
	res := m.Access(pa, false, trefi*5)
	if res.Stall != cfg.Timing.RFC {
		t.Errorf("stall at REF start = %d, want %d", res.Stall, cfg.Timing.RFC)
	}
	// Access after the REF completes: no stall.
	res = m.Access(pa, false, trefi*6+cfg.Timing.RFC+1)
	if res.Stall != 0 {
		t.Errorf("stall outside REF = %d, want 0", res.Stall)
	}
	if m.Stats().RefreshStalls != 1 {
		t.Errorf("RefreshStalls = %d, want 1", m.Stats().RefreshStalls)
	}
}

func TestDoubleRefreshStallsMoreOften(t *testing.T) {
	count := func(scale int) uint64 {
		cfg := testConfig()
		cfg.StaggerRanks = false
		scaled, err := cfg.Timing.RefreshScaled(scale)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Timing = scaled
		m := mustModule(t, cfg)
		pa := m.Mapper().Unmap(Coord{Bank: 0, Row: 1, Col: 0})
		// Probe at a fixed cadence unrelated to tREFI.
		for now := sim.Cycles(0); now < sim.DefaultFreq.Cycles(10*time.Millisecond); now += 1009 {
			m.Access(pa, false, now)
		}
		return m.Stats().RefreshStalls
	}
	single, double := count(1), count(2)
	if double <= single {
		t.Errorf("double-rate refresh stalled %d times vs %d at single rate", double, single)
	}
}

func TestSingleSidedDisturbance(t *testing.T) {
	cfg := testConfig()
	m := mustModule(t, cfg)
	const victimRow = 100
	m.PlantWeakRow(0, victimRow, 1000)

	agg := m.Mapper().Unmap(Coord{Bank: 0, Row: victimRow + 1, Col: 0})
	other := m.Mapper().Unmap(Coord{Bank: 0, Row: 3000, Col: 0}) // closes the aggressor row, far from victim

	var now sim.Cycles
	flipsAt := -1
	for i := 0; i < 1100; i++ {
		m.Access(agg, false, now)
		now += 200
		m.Access(other, false, now)
		now += 200
		if flipsAt < 0 && m.FlipCount() > 0 {
			flipsAt = i + 1
		}
	}
	if flipsAt < 0 {
		t.Fatal("single-sided hammering never flipped a planted 1000-unit row")
	}
	// Exactly 1 unit per aggressor activation: flips at the 1000th.
	if flipsAt != 1000 {
		t.Errorf("flip after %d aggressor activations, want 1000", flipsAt)
	}
	f := m.Flips()[0]
	if f.Bank != 0 || f.Row != victimRow {
		t.Errorf("flip at %v, want bank 0 row %d", f, victimRow)
	}
}

func TestDoubleSidedDisturbanceIsSuperlinear(t *testing.T) {
	cfg := testConfig()
	m := mustModule(t, cfg)
	const victimRow = 200
	m.PlantWeakRow(0, victimRow, 1000)

	lo := m.Mapper().Unmap(Coord{Bank: 0, Row: victimRow - 1, Col: 0})
	hi := m.Mapper().Unmap(Coord{Bank: 0, Row: victimRow + 1, Col: 0})

	var now sim.Cycles
	accesses := 0
	for m.FlipCount() == 0 && accesses < 4000 {
		m.Access(lo, false, now)
		now += 200
		m.Access(hi, false, now)
		now += 200
		accesses += 2
	}
	if m.FlipCount() == 0 {
		t.Fatal("double-sided hammering never flipped")
	}
	// With bonus 0.82 nearly every access deposits 1.82 units into the
	// victim, so the flip arrives near 1000/1.82 ≈ 550 accesses — the same
	// ~1.8x advantage over single-sided hammering that Table 1 reports
	// (220K double-sided vs 400K single-sided accesses).
	if accesses > 600 {
		t.Errorf("double-sided needed %d accesses; expected ~550", accesses)
	}
	if accesses < 500 {
		t.Errorf("double-sided flipped after only %d accesses; bonus too strong", accesses)
	}
}

func TestVictimActivationResetsAccumulator(t *testing.T) {
	cfg := testConfig()
	m := mustModule(t, cfg)
	const victimRow = 300
	m.PlantWeakRow(0, victimRow, 1000)
	agg := m.Mapper().Unmap(Coord{Bank: 0, Row: victimRow + 1, Col: 0})
	other := m.Mapper().Unmap(Coord{Bank: 0, Row: 3000, Col: 0})
	victimPA := m.Mapper().Unmap(Coord{Bank: 0, Row: victimRow, Col: 0})

	var now sim.Cycles
	hammerN := func(n int) {
		for i := 0; i < n; i++ {
			m.Access(agg, false, now)
			now += 200
			m.Access(other, false, now)
			now += 200
		}
	}
	hammerN(900)
	if m.FlipCount() != 0 {
		t.Fatal("flipped before threshold")
	}
	if u := m.VictimUnits(0, victimRow, now); u != 900 {
		t.Fatalf("accumulator = %g, want 900", u)
	}
	// Selective refresh: a read of the victim row restores its charge.
	m.Access(victimPA, false, now)
	now += 200
	if u := m.VictimUnits(0, victimRow, now); u != 0 {
		t.Fatalf("accumulator after refresh read = %g, want 0", u)
	}
	hammerN(900)
	if m.FlipCount() != 0 {
		t.Error("flipped despite selective refresh resetting the accumulator")
	}
	hammerN(200)
	if m.FlipCount() == 0 {
		t.Error("eventually the row should flip again once re-hammered past threshold")
	}
}

func TestRefreshRowEquivalentToRead(t *testing.T) {
	cfg := testConfig()
	m := mustModule(t, cfg)
	const victimRow = 300
	m.PlantWeakRow(0, victimRow, 1000)
	agg := m.Mapper().Unmap(Coord{Bank: 0, Row: victimRow + 1, Col: 0})
	other := m.Mapper().Unmap(Coord{Bank: 0, Row: 3000, Col: 0})
	var now sim.Cycles
	for i := 0; i < 500; i++ {
		m.Access(agg, false, now)
		now += 200
		m.Access(other, false, now)
		now += 200
	}
	m.RefreshRow(0, victimRow, now)
	if u := m.VictimUnits(0, victimRow, now); u != 0 {
		t.Errorf("RefreshRow left %g units", u)
	}
	// Out-of-range rows are ignored.
	m.RefreshRow(0, -1, now)
	m.RefreshRow(0, cfg.Geometry.RowsPerBank, now)
	m.RefreshRow(-1, 0, now)
}

func TestPeriodicRefreshPreventsSlowHammer(t *testing.T) {
	// Hammering slower than the refresh sweep can restore charge must not
	// flip: spread the same number of activations over two refresh windows.
	cfg := testConfig()
	m := mustModule(t, cfg)
	const victimRow = 64 // bin 16 of 1024 (4096 rows / 4 per REF... computed lazily)
	m.PlantWeakRow(0, victimRow, 1000)
	agg := m.Mapper().Unmap(Coord{Bank: 0, Row: victimRow + 1, Col: 0})
	other := m.Mapper().Unmap(Coord{Bank: 0, Row: 3000, Col: 0})

	period := cfg.Timing.RefreshPeriod
	step := period * 2 / 1500 // 1500 activations across 2 full periods
	var now sim.Cycles
	for i := 0; i < 1500; i++ {
		m.Access(agg, false, now)
		m.Access(other, false, now+step/2)
		now += step
	}
	if m.FlipCount() != 0 {
		t.Errorf("slow hammering flipped %d bits despite refresh sweep", m.FlipCount())
	}
}

func TestFastHammerBeatsRefresh(t *testing.T) {
	// The same 1500 activations packed inside one refresh window DO flip.
	cfg := testConfig()
	m := mustModule(t, cfg)
	const victimRow = 64
	m.PlantWeakRow(0, victimRow, 1000)
	agg := m.Mapper().Unmap(Coord{Bank: 0, Row: victimRow + 1, Col: 0})
	other := m.Mapper().Unmap(Coord{Bank: 0, Row: 3000, Col: 0})
	var now sim.Cycles = 1 // just after the sweep origin
	for i := 0; i < 1500; i++ {
		m.Access(agg, false, now)
		now += 200
		m.Access(other, false, now)
		now += 200
	}
	if m.FlipCount() == 0 {
		t.Error("fast hammering within one refresh window should flip")
	}
}

func TestWeakRowsDeterministicAndSorted(t *testing.T) {
	cfg := testConfig()
	m1 := mustModule(t, cfg)
	m2 := mustModule(t, cfg)
	a := m1.WeakRows(3, cfg.Disturb.MinFlipUnits*1.5, 10)
	b := m2.WeakRows(3, cfg.Disturb.MinFlipUnits*1.5, 10)
	if len(a) == 0 {
		t.Fatal("no weak rows found; vulnerable fraction too small?")
	}
	if len(a) != len(b) {
		t.Fatal("weak row scan not deterministic")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("weak row scan not deterministic")
		}
	}
	// Sorted weakest-first.
	prev := -1.0
	for _, row := range a {
		thr, ok := m1.RowThreshold(3, row)
		if !ok {
			t.Fatalf("row %d reported weak but has no threshold", row)
		}
		if prev > 0 && thr < prev {
			t.Fatal("weak rows not sorted by threshold")
		}
		prev = thr
	}
}

func TestWeakestRowNearMinimum(t *testing.T) {
	cfg := DefaultConfig(sim.DefaultFreq) // full 32768-row banks
	m := mustModule(t, cfg)
	rows := m.WeakRows(0, cfg.Disturb.MinFlipUnits*1.01, 1)
	if len(rows) == 0 {
		t.Fatal("no row within 1% of the minimum threshold in a full bank")
	}
	thr, _ := m.RowThreshold(0, rows[0])
	if thr < cfg.Disturb.MinFlipUnits {
		t.Errorf("threshold %g below configured minimum %g", thr, cfg.Disturb.MinFlipUnits)
	}
}

func TestActivateHook(t *testing.T) {
	m := mustModule(t, testConfig())
	var got []Coord
	m.OnActivate(func(c Coord, now sim.Cycles) { got = append(got, c) })
	a := m.Mapper().Unmap(Coord{Bank: 1, Row: 7, Col: 0})
	m.Access(a, false, 100)
	m.Access(a, false, 200) // row hit: no activation
	if len(got) != 1 || got[0].Row != 7 || got[0].Bank != 1 {
		t.Errorf("hook saw %v", got)
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := testConfig()
	cfg.Disturb.MinFlipUnits = -1
	if _, err := New(cfg); err == nil {
		t.Error("negative MinFlipUnits accepted")
	}
	cfg = testConfig()
	cfg.Timing.RowHit = 0
	if _, err := New(cfg); err == nil {
		t.Error("zero RowHit accepted")
	}
	cfg = testConfig()
	cfg.Geometry.Ranks = 0
	if _, err := New(cfg); err == nil {
		t.Error("zero ranks accepted")
	}
}

func TestPlantWeakRowRejectsBadConfig(t *testing.T) {
	m := mustModule(t, testConfig())
	g := m.Config().Geometry
	for _, tc := range []struct {
		name      string
		bank, row int
		units     float64
	}{
		{"zero threshold", 0, 0, 0},
		{"negative threshold", 0, 0, -5},
		{"bank out of range", g.Banks(), 0, 1000},
		{"negative bank", -1, 0, 1000},
		{"row out of range", 0, g.RowsPerBank, 1000},
		{"negative row", 0, -1, 1000},
	} {
		if err := m.PlantWeakRow(tc.bank, tc.row, tc.units); err == nil {
			t.Errorf("%s: PlantWeakRow(%d, %d, %g) accepted", tc.name, tc.bank, tc.row, tc.units)
		}
	}
	if err := m.PlantWeakRow(0, 0, 1000); err != nil {
		t.Errorf("valid plant rejected: %v", err)
	}
	if thr, ok := m.RowThreshold(0, 0); !ok || thr != 1000 {
		t.Errorf("planted threshold not visible: got %g, %v", thr, ok)
	}
}

func TestRefreshScaledRejectsBadScale(t *testing.T) {
	tm := DefaultTiming(sim.DefaultFreq)
	for _, scale := range []int{0, -1, -100} {
		if _, err := tm.RefreshScaled(scale); err == nil {
			t.Errorf("RefreshScaled(%d) accepted", scale)
		}
	}
	double, err := tm.RefreshScaled(2)
	if err != nil {
		t.Fatalf("RefreshScaled(2): %v", err)
	}
	if double.RefreshPeriod != tm.RefreshPeriod/2 {
		t.Error("RefreshScaled(2) did not halve the period")
	}
}

func TestThresholdDistributionProperties(t *testing.T) {
	cfg := DefaultDisturbConfig()
	vulnerable := 0
	const n = 20000
	for row := 0; row < n; row++ {
		thr, ok := cfg.threshold(0, row)
		if !ok {
			continue
		}
		vulnerable++
		if thr < cfg.MinFlipUnits {
			t.Fatalf("threshold %g below minimum", thr)
		}
		if thr > cfg.MinFlipUnits*(1+cfg.ThresholdSpread) {
			t.Fatalf("threshold %g above maximum", thr)
		}
	}
	frac := float64(vulnerable) / n
	if frac < cfg.VulnerableFraction*0.8 || frac > cfg.VulnerableFraction*1.2 {
		t.Errorf("vulnerable fraction %g, want ~%g", frac, cfg.VulnerableFraction)
	}
}

func TestDisturbQuickNoFlipBelowThreshold(t *testing.T) {
	// Property: hammering strictly fewer than threshold units never flips.
	err := quick.Check(func(seed uint64, n uint16) bool {
		cfg := testConfig()
		cfg.Disturb.Seed = seed
		m, err := New(cfg)
		if err != nil {
			return false
		}
		thr := 500 + float64(n%1000)
		m.PlantWeakRow(0, 500, thr)
		agg := m.Mapper().Unmap(Coord{Bank: 0, Row: 501, Col: 0})
		other := m.Mapper().Unmap(Coord{Bank: 0, Row: 3500, Col: 0})
		var now sim.Cycles = 1
		count := int(thr) - 1
		for i := 0; i < count; i++ {
			m.Access(agg, false, now)
			now += 100
			m.Access(other, false, now)
			now += 100
		}
		// Might flip other procedurally-weak rows near 3500/501? Those have
		// thresholds >= MinFlipUnits (400K), unreachable here. So only our
		// planted row could flip — and it must not.
		return m.FlipCount() == 0
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Error(err)
	}
}

func TestRefreshScaledRejectsNonPositive(t *testing.T) {
	tm := DefaultTiming(sim.DefaultFreq)
	for _, scale := range []int{0, -1} {
		if _, err := tm.RefreshScaled(scale); err == nil {
			t.Errorf("RefreshScaled(%d) accepted", scale)
		}
	}
}

func TestNewLinearMapperRejectsNonPowerOfTwo(t *testing.T) {
	g := DefaultGeometry()
	g.RowsPerBank = 3000 // not a power of two
	if _, err := NewLinearMapper(g, false); err == nil {
		t.Error("non-power-of-two geometry accepted")
	}
	if _, err := NewLinearMapper(Geometry{}, false); err == nil {
		t.Error("zero geometry accepted")
	}
}
