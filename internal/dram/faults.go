package dram

import (
	"fmt"

	"repro/internal/sim"
)

// FaultConfig injects refresh and cell-reliability degradations into a
// Module. The zero value injects nothing. Decisions are derived from the
// *sim.Rand handed to InjectFaults (plus a stateless hash for the refresh
// schedule), so a given (config, seed, command stream) degrades identically.
type FaultConfig struct {
	// RefreshSkipRate is the probability that one scheduled REF slot is
	// postponed to the next sweep: the affected rows keep their accumulated
	// disturbance for a whole extra tREFW (controllers legally postpone up
	// to 8 REF commands under load; a buggy one skips them outright).
	RefreshSkipRate float64
	// ECCCorrectableRate is the per-activation probability of a transient
	// single-bit error in the activated row (a marginal cell upset that
	// SECDED scrubbing can repair).
	ECCCorrectableRate float64
	// ECCUncorrectableRate is the per-activation probability of a transient
	// double-bit error within one 64-bit word — the multi-flip-per-word
	// failure mode that defeats SECDED (§1.2).
	ECCUncorrectableRate float64
}

// Validate checks the rates.
func (c FaultConfig) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"RefreshSkipRate", c.RefreshSkipRate},
		{"ECCCorrectableRate", c.ECCCorrectableRate},
		{"ECCUncorrectableRate", c.ECCUncorrectableRate},
	} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("dram: fault %s must be in [0,1], got %g", r.name, r.v)
		}
	}
	return nil
}

// FaultStats counts the degradations actually injected.
type FaultStats struct {
	// SkippedRefreshes is the number of distinct REF slots the module has
	// (lazily) evaluated as skipped.
	SkippedRefreshes uint64
	// TransientSingle / TransientDouble count injected transient error
	// events (a double event contributes two bit flips in one word).
	TransientSingle uint64
	TransientDouble uint64
}

// maxSkipWalk bounds how many consecutive sweeps a refresh-skip walk-back
// considers; beyond it the row is treated as refreshed (even a broken
// controller eventually catches up).
const maxSkipWalk = 8

type moduleFault struct {
	cfg     FaultConfig
	rng     *sim.Rand
	skipKey uint64 // stateless salt for the per-REF-slot skip decision
	skipped map[uint64]struct{}
	stats   FaultStats
}

// skipsSlot decides, statelessly, whether REF slot k is skipped. The same k
// always decides the same way, which keeps the lazily evaluated refresh
// schedule self-consistent across queries at different times.
func (f *moduleFault) skipsSlot(k uint64) bool {
	h := rowHash(f.skipKey, int(k>>32), int(uint32(k)))
	if float64(h>>11)/(1<<53) >= f.cfg.RefreshSkipRate {
		return false
	}
	if _, seen := f.skipped[k]; !seen {
		f.skipped[k] = struct{}{}
		f.stats.SkippedRefreshes++
	}
	return true
}

// InjectFaults installs a degradation model on the module. Call at most
// once, before the run; a zero cfg changes nothing. rng must be dedicated to
// the module (see sim.Rand.Split).
func (m *Module) InjectFaults(cfg FaultConfig, rng *sim.Rand) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	m.fault = &moduleFault{
		cfg:     cfg,
		rng:     rng,
		skipKey: rng.Uint64(),
		skipped: make(map[uint64]struct{}),
	}
	return nil
}

// FaultStats reports the degradations injected so far (zero value without
// InjectFaults).
func (m *Module) FaultStats() FaultStats {
	if m.fault == nil {
		return FaultStats{}
	}
	return m.fault.stats
}

// TransientFlips returns the transient (fault-injected) bit flips, in
// occurrence order. They are deliberately kept out of Flips/FlipCount:
// hammer-induced flips are the experiments' headline observable, while
// transient errors exist to exercise the ECC scrubber.
func (m *Module) TransientFlips() []BitFlip {
	return append([]BitFlip(nil), m.transient...)
}

// injectTransient draws the per-activation transient-error events and
// appends their flips to the transient list.
func (m *Module) injectTransient(c Coord, now sim.Cycles) {
	f := m.fault
	rowBits := m.cfg.Geometry.RowBytes * 8
	if f.cfg.ECCCorrectableRate > 0 && f.rng.Bool(f.cfg.ECCCorrectableRate) {
		m.transient = append(m.transient, BitFlip{
			Bank: c.Bank, Row: c.Row, Bit: f.rng.Intn(rowBits), Time: now,
		})
		f.stats.TransientSingle++
	}
	if f.cfg.ECCUncorrectableRate > 0 && f.rng.Bool(f.cfg.ECCUncorrectableRate) {
		word := f.rng.Intn(rowBits / 64)
		b1 := f.rng.Intn(64)
		b2 := (b1 + 1 + f.rng.Intn(63)) % 64
		m.transient = append(m.transient,
			BitFlip{Bank: c.Bank, Row: c.Row, Bit: word*64 + b1, Time: now},
			BitFlip{Bank: c.Bank, Row: c.Row, Bit: word*64 + b2, Time: now},
		)
		f.stats.TransientDouble++
	}
}
