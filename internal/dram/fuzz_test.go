package dram

import "testing"

// FuzzMapperRoundTrip: both address maps invert exactly for any in-range
// physical address.
func FuzzMapperRoundTrip(f *testing.F) {
	f.Add(uint64(0))
	f.Add(uint64(0x1234_5678))
	f.Add(uint64(1) << 31)
	g := DefaultGeometry()
	lin := mustMapper(f, g, true)
	xm, err := NewXORMapper(g, SandyBridgeMasks(g))
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, pa uint64) {
		pa %= g.Size()
		if got := lin.Unmap(lin.Map(pa)); got != pa {
			t.Fatalf("linear: %#x -> %v -> %#x", pa, lin.Map(pa), got)
		}
		if got := xm.Unmap(xm.Map(pa)); got != pa {
			t.Fatalf("xor: %#x -> %v -> %#x", pa, xm.Map(pa), got)
		}
	})
}
