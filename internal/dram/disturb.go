package dram

import (
	"fmt"

	"repro/internal/sim"
)

// DisturbConfig parameterises the electrical disturbance (rowhammer) model.
//
// Every activation of a row deposits disturbance "units" into the charge
// accumulators of its physical neighbours. A victim row's accumulator is
// cleared whenever the row itself is activated (a read refreshes the row —
// the property ANVIL's selective refresh exploits) or when the periodic
// refresh sweep reaches it. If the accumulator reaches the row's weak-cell
// threshold before being cleared, a bit in the row flips.
//
// Double-sided hammering is modelled with an alternation bonus: an
// activation whose bank's previously activated row was the victim's *other*
// neighbour carries (1 + AlternationBonus) units. With the default bonus of
// 0.82 and weakest threshold of 400K units, first flips appear after ~400K
// single-sided accesses or ~220K double-sided accesses — Table 1's minimums.
type DisturbConfig struct {
	// AlternationBonus is the extra disturbance (fraction of a unit) carried
	// by an activation from the side opposite to the victim's previous
	// disturbance — the signature of double-sided hammering. Alternation of
	// sides is what matters; unrelated activations of other rows in the bank
	// in between (as the CLFLUSH-free attack's eviction accesses cause) do
	// not break the bonus, matching the physics of charge disturbance.
	AlternationBonus float64
	// FarCouplingRatio is the units deposited into rows at distance 2,
	// relative to distance-1 rows. Zero disables far coupling.
	FarCouplingRatio float64
	// MinFlipUnits is the flip threshold of the weakest cells in the module.
	MinFlipUnits float64
	// ThresholdSpread scales how much weaker-than-minimum rows spread out:
	// a vulnerable row's threshold is MinFlipUnits * (1 + ThresholdSpread*u)
	// for a per-row deterministic u in [0,1).
	ThresholdSpread float64
	// VulnerableFraction is the fraction of rows that have any finite flip
	// threshold at all; the rest never flip.
	VulnerableFraction float64
	// MaxWeakCellsPerRow caps how many independently-flipping weak cells a
	// vulnerable row can have (Kim et al. and the paper both observe
	// multiple flips per row — and even per 64-bit word, which is what
	// defeats SECDED ECC). Cells beyond the first are progressively
	// stronger. Zero or one gives single-cell rows.
	MaxWeakCellsPerRow int
	// ExtraCellSpread is the per-cell threshold increment for the second
	// and later weak cells: cell k flips at threshold * (1 + k*spread).
	ExtraCellSpread float64
	// Seed makes the weak-cell map deterministic.
	Seed uint64
}

// DefaultDisturbConfig models the paper's test module: weakest cells flip at
// 400K disturbance units (400K single-sided or 220K double-sided accesses).
func DefaultDisturbConfig() DisturbConfig {
	return DisturbConfig{
		AlternationBonus:   0.82,
		FarCouplingRatio:   0, // distance-2 coupling off by default
		MinFlipUnits:       400_000,
		ThresholdSpread:    4.0,
		VulnerableFraction: 0.25,
		MaxWeakCellsPerRow: 1,
		ExtraCellSpread:    0.15,
		Seed:               0x0a17,
	}
}

// Scaled returns a copy with MinFlipUnits multiplied by f. Section 4.5 uses
// Scaled(0.5) to model future, denser DRAM that flips at 110K double-sided
// accesses (200K units).
func (c DisturbConfig) Scaled(f float64) DisturbConfig {
	c.MinFlipUnits *= f
	return c
}

// Validate checks the disturbance parameters.
func (c DisturbConfig) Validate() error {
	switch {
	case c.AlternationBonus < 0 || c.AlternationBonus > 1:
		return fmt.Errorf("dram: AlternationBonus must be in [0,1], got %g", c.AlternationBonus)
	case c.FarCouplingRatio < 0 || c.FarCouplingRatio > 1:
		return fmt.Errorf("dram: FarCouplingRatio must be in [0,1], got %g", c.FarCouplingRatio)
	case c.MinFlipUnits <= 0:
		return fmt.Errorf("dram: MinFlipUnits must be positive, got %g", c.MinFlipUnits)
	case c.ThresholdSpread < 0:
		return fmt.Errorf("dram: ThresholdSpread must be nonnegative, got %g", c.ThresholdSpread)
	case c.VulnerableFraction < 0 || c.VulnerableFraction > 1:
		return fmt.Errorf("dram: VulnerableFraction must be in [0,1], got %g", c.VulnerableFraction)
	case c.MaxWeakCellsPerRow < 0:
		return fmt.Errorf("dram: MaxWeakCellsPerRow must be nonnegative, got %d", c.MaxWeakCellsPerRow)
	case c.ExtraCellSpread < 0:
		return fmt.Errorf("dram: ExtraCellSpread must be nonnegative, got %g", c.ExtraCellSpread)
	}
	return nil
}

// BitFlip records one disturbance-induced bit flip.
type BitFlip struct {
	Bank int
	Row  int        // the victim row whose cell flipped
	Bit  int        // bit index within the row
	Time sim.Cycles // simulated time of the flip
}

func (f BitFlip) String() string {
	return fmt.Sprintf("flip bank %d row %d bit %d @%d", f.Bank, f.Row, f.Bit, uint64(f.Time))
}

// victim tracks the disturbance accumulator of one row. The cached flip
// threshold lives in the same struct so the activation path touches one
// cache line per victim, not two arrays; the layout packs to 32 bytes
// (two victims per line).
type victim struct {
	units     float64
	lastReset sim.Cycles // time the accumulator last started from zero
	// thr caches the row's weakest-cell flip threshold: 0 means not yet
	// computed, +Inf an invulnerable row (so the units-vs-threshold compare
	// needs no separate "vulnerable" flag).
	thr      float64
	flipped  int32 // weak cells already flipped in this accumulation epoch
	lastSide int8  // side (-1/+1) of the neighbour that last disturbed it
}

// rowHash derives the deterministic per-row randomness for weak-cell
// placement (a 64-bit mix of seed, bank and row).
func rowHash(seed uint64, bank, row int) uint64 {
	x := seed ^ uint64(bank)*0x9e3779b97f4a7c15 ^ uint64(row)*0xc2b2ae3d27d4eb4f
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// weakCell is one flippable cell in a row.
type weakCell struct {
	threshold float64
	bit       int // bit index within the row
}

// threshold returns the flip threshold of the weakest cell of (bank,row),
// and whether the row is vulnerable at all.
func (c DisturbConfig) threshold(bank, row int) (float64, bool) {
	h := rowHash(c.Seed, bank, row)
	// low 32 bits select vulnerability, high 32 bits the spread position.
	sel := float64(uint32(h)) / float64(1<<32)
	if sel >= c.VulnerableFraction {
		return 0, false
	}
	u := float64(h>>32) / float64(1<<32)
	return c.MinFlipUnits * (1 + c.ThresholdSpread*u), true
}

// cells returns the procedural weak cells of (bank,row), weakest first.
func (c DisturbConfig) cells(bank, row, rowBits int) []weakCell {
	base, ok := c.threshold(bank, row)
	if !ok {
		return nil
	}
	n := 1
	if c.MaxWeakCellsPerRow > 1 {
		n = 1 + int(rowHash(c.Seed^0xce115, bank, row)%uint64(c.MaxWeakCellsPerRow))
	}
	out := make([]weakCell, n)
	for k := range out {
		out[k] = weakCell{
			threshold: base * (1 + float64(k)*c.ExtraCellSpread),
			bit:       int(rowHash(c.Seed^0xb17f11b^uint64(k)*0x9e37, bank, row) % uint64(rowBits)),
		}
	}
	return out
}
