package dram

import (
	"fmt"

	"repro/internal/sim"
)

// DetailedTiming is the optional command-level timing engine: instead of
// the three fixed end-to-end latencies, each access is decomposed into
// PRE / ACT / RD-WR commands whose issue times respect the JEDEC
// inter-command constraints. The engine is the fidelity ceiling for
// questions like "can tFAW bound a hammer's activation rate?" — which the
// ablation benches ask directly.
//
// All values are in CPU cycles; Detailed() converts from nanoseconds.
type DetailedTiming struct {
	TRCD sim.Cycles // ACT -> RD/WR to the same bank
	TRP  sim.Cycles // PRE -> ACT to the same bank
	TCL  sim.Cycles // RD -> first data
	TRAS sim.Cycles // ACT -> PRE to the same bank
	TRC  sim.Cycles // ACT -> ACT to the same bank (>= TRAS + TRP)
	TRRD sim.Cycles // ACT -> ACT to different banks of one rank
	TFAW sim.Cycles // window in which at most four ACTs hit one rank
	TBus sim.Cycles // data burst + controller return
}

// Detailed returns DDR3-1333-class command timings at the given frequency.
func Detailed(f sim.Freq) *DetailedTiming {
	ns := func(n float64) sim.Cycles {
		return sim.Cycles(n * float64(f.Hz()) / 1e9)
	}
	return &DetailedTiming{
		TRCD: ns(13.5),
		TRP:  ns(13.5),
		TCL:  ns(13.5),
		TRAS: ns(36),
		TRC:  ns(49.5),
		TRRD: ns(6),
		TFAW: ns(30),
		TBus: ns(14), // burst + queue + return
	}
}

// Validate checks internal consistency.
func (t *DetailedTiming) Validate() error {
	if t == nil {
		return nil
	}
	switch {
	case t.TRCD == 0 || t.TRP == 0 || t.TCL == 0 || t.TRAS == 0 || t.TRC == 0:
		return fmt.Errorf("dram: detailed timing has zero core constraints: %+v", *t)
	case t.TRC < t.TRAS+t.TRP:
		return fmt.Errorf("dram: tRC (%d) < tRAS+tRP (%d)", t.TRC, t.TRAS+t.TRP)
	}
	return nil
}

// bankTiming is the per-bank command history the engine needs.
type bankTiming struct {
	lastAct sim.Cycles
	lastPre sim.Cycles
	hasAct  bool
}

// rankTiming is the per-rank history (ACT spacing constraints).
type rankTiming struct {
	lastAct sim.Cycles
	acts    [4]sim.Cycles // rolling window of the last four ACT times
	actPos  int
	actSeen int
}

// commandEngine computes command-accurate access latencies.
type commandEngine struct {
	t     *DetailedTiming
	banks []bankTiming
	ranks []rankTiming
}

func newCommandEngine(t *DetailedTiming, banks, ranks int) *commandEngine {
	return &commandEngine{
		t:     t,
		banks: make([]bankTiming, banks),
		ranks: make([]rankTiming, ranks),
	}
}

// access schedules the commands for one access and returns when data is
// available. kind describes the row-buffer outcome decided by the module.
func (e *commandEngine) access(bank, rank int, rowHit, openRow bool, now sim.Cycles) sim.Cycles {
	b := &e.banks[bank]
	r := &e.ranks[rank]
	t := e.t
	if rowHit {
		// RD/WR immediately (tRCD already satisfied for an open row that
		// has served an access; for freshly opened rows lastAct gates it).
		rd := sim.Max(now, b.lastAct+t.TRCD)
		return rd + t.TCL + t.TBus
	}

	issue := now
	if openRow {
		// PRE the open row first: legal tRAS after its ACT.
		pre := sim.Max(issue, b.lastAct+t.TRAS)
		b.lastPre = pre
		issue = pre + t.TRP
	} else if b.hasAct {
		// Bank precharged earlier; respect the PRE it closed with.
		issue = sim.Max(issue, b.lastPre+t.TRP)
	}

	// ACT: same-bank tRC, same-rank tRRD and tFAW.
	act := issue
	if b.hasAct {
		act = sim.Max(act, b.lastAct+t.TRC)
	}
	if r.actSeen > 0 {
		act = sim.Max(act, r.lastAct+t.TRRD)
	}
	if r.actSeen >= 4 {
		// The fourth-previous ACT opens the tFAW window.
		act = sim.Max(act, r.acts[r.actPos]+t.TFAW)
	}
	b.lastAct = act
	b.hasAct = true
	r.lastAct = act
	r.acts[r.actPos] = act
	r.actPos = (r.actPos + 1) % 4
	r.actSeen++

	rd := act + t.TRCD
	return rd + t.TCL + t.TBus
}
