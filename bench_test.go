package repro_test

// The benchmark suite enumerates the experiment registry: every table and
// figure of the paper's evaluation regenerates under
//
//	go test -bench=Experiments -benchtime=1x -benchmem
//
// with each experiment's headline quantities (ms-to-flip, accesses,
// detection latency, refresh rates, normalized execution times) reported as
// custom metrics straight from its registered Result. The quick variants
// (-short) shrink run lengths. BenchmarkTable1Sweep measures the parallel
// seed-sharded runner: the same 16-seed Table 1 sweep at 1 worker and at 8,
// reporting the wall-clock speedup (the merged results are byte-identical
// by construction — see scenario.RunMany).

import (
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/scenario"
)

func cfg(b *testing.B) scenario.Config {
	return scenario.Config{Quick: testing.Short()}
}

// BenchmarkExperiments regenerates every registered experiment by name.
func BenchmarkExperiments(b *testing.B) {
	for _, e := range scenario.Experiments() {
		b.Run(e.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := e.Run(cfg(b))
				if err != nil {
					b.Fatal(err)
				}
				if m, ok := res.(scenario.Metricer); ok {
					for _, met := range m.Metrics() {
						b.ReportMetric(met.Value, met.Name)
					}
				}
				b.Log("\n" + res.Render())
			}
		})
	}
}

// BenchmarkTable1Sweep runs the 16-seed Table 1 sweep serially and with an
// 8-worker pool, reporting both wall-clock times and the speedup. On a
// machine with >=8 cores the pool delivers near-linear scaling because each
// replicate owns its machine; on fewer cores the speedup degrades towards
// 1x but the merged results stay byte-identical.
func BenchmarkTable1Sweep(b *testing.B) {
	sweep := func(workers int) time.Duration {
		c := scenario.Config{Quick: testing.Short(), Parallel: workers}
		start := time.Now()
		if _, err := experiments.Table1Sweep(c); err != nil {
			b.Fatal(err)
		}
		return time.Since(start)
	}
	for i := 0; i < b.N; i++ {
		serial := sweep(1)
		parallel := sweep(8)
		b.ReportMetric(serial.Seconds(), "serial-s")
		b.ReportMetric(parallel.Seconds(), "parallel8-s")
		b.ReportMetric(serial.Seconds()/parallel.Seconds(), "speedup-8w")
	}
}
