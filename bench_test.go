package repro_test

// One benchmark per table and figure of the paper's evaluation. Each bench
// regenerates its experiment on the simulated machine and reports the
// headline quantities as custom metrics, so
//
//	go test -bench=. -benchtime=1x -benchmem
//
// reproduces the entire evaluation. The quick variants (-short) shrink run
// lengths. The metric *names* mirror the paper's: ms-to-flip, accesses,
// detection latency, refresh rates, normalized execution times.

import (
	"testing"
	"time"

	"repro/internal/experiments"
)

func cfg(b *testing.B) experiments.Config {
	return experiments.Config{Quick: testing.Short()}
}

// BenchmarkTable1_AttackCharacteristics regenerates Table 1: minimum DRAM
// row accesses and time to first bit flip for the three attacks.
func BenchmarkTable1_AttackCharacteristics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(cfg(b))
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if !r.Flipped {
				b.Fatalf("%s: no flip", r.Technique)
			}
		}
		b.ReportMetric(float64(rows[0].MinAccesses)/1000, "singleK")
		b.ReportMetric(float64(rows[1].MinAccesses)/1000, "doubleK")
		b.ReportMetric(float64(rows[2].MinAccesses)/1000, "freeK")
		b.ReportMetric(float64(rows[1].TimeToFlip)/float64(time.Millisecond), "double-ms")
		b.ReportMetric(float64(rows[2].TimeToFlip)/float64(time.Millisecond), "free-ms")
		b.Log("\n" + experiments.RenderTable1(rows))
	}
}

// BenchmarkFigure1_PatternMisses regenerates Figure 1(b)'s property: the
// CLFLUSH-free pattern misses the LLC on the aggressor every iteration with
// a constant number of extra misses.
func BenchmarkFigure1_PatternMisses(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure1(cfg(b))
		if err != nil {
			b.Fatal(err)
		}
		if !r.AggressorAlwaysMisses {
			b.Fatal("aggressor does not miss every iteration")
		}
		b.ReportMetric(float64(r.FreeSeqLen), "loads/iter")
		b.ReportMetric(float64(r.FreeMissesPerIter), "misses/iter")
	}
}

// BenchmarkSection21_DoubleRefreshBypass regenerates §2.1: bit flips under
// the deployed 32 ms double-refresh mitigation.
func BenchmarkSection21_DoubleRefreshBypass(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Section21(cfg(b))
		if err != nil {
			b.Fatal(err)
		}
		if !r.Flipped {
			b.Fatal("no flip under double refresh; §2.1 requires the bypass")
		}
		b.ReportMetric(float64(r.TimeToFlip)/float64(time.Millisecond), "ms-to-flip")
	}
}

// BenchmarkSection22_PolicyInference regenerates §2.2: the replacement-
// policy identification experiment must single out Bit-PLRU.
func BenchmarkSection22_PolicyInference(b *testing.B) {
	for i := 0; i < b.N; i++ {
		scores, err := experiments.Section22(cfg(b))
		if err != nil {
			b.Fatal(err)
		}
		if scores[0].Policy != "bit-plru" {
			b.Fatalf("inference ranked %s first", scores[0].Policy)
		}
		b.ReportMetric(scores[0].Match, "best-agreement")
		b.ReportMetric(scores[1].Match, "runnerup-agreement")
	}
}

// BenchmarkTable3_Detection regenerates Table 3: detection latency,
// selective-refresh rate, and (zero) bit flips for both attacks under light
// and heavy load.
func BenchmarkTable3_Detection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table3(cfg(b))
		if err != nil {
			b.Fatal(err)
		}
		flips := 0
		for _, r := range rows {
			flips += r.TotalBitFlips
		}
		if flips != 0 {
			b.Fatalf("ANVIL allowed %d flips", flips)
		}
		b.ReportMetric(float64(rows[0].AvgTimeToDetect)/float64(time.Millisecond), "clflush-heavy-ms")
		b.ReportMetric(float64(rows[3].AvgTimeToDetect)/float64(time.Millisecond), "free-light-ms")
		b.ReportMetric(rows[0].RefreshesPer64ms, "clflush-heavy-refr/64ms")
		b.Log("\n" + experiments.RenderTable3(rows))
	}
}

// BenchmarkTable4_FalsePositives regenerates Table 4: superfluous refresh
// rates for the twelve SPEC profiles under ANVIL-baseline.
func BenchmarkTable4_FalsePositives(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table4(cfg(b))
		if err != nil {
			b.Fatal(err)
		}
		var worst, sum float64
		for _, r := range rows {
			sum += r.RefreshesPerSec
			if r.RefreshesPerSec > worst {
				worst = r.RefreshesPerSec
			}
		}
		b.ReportMetric(worst, "worst-refr/s")
		b.ReportMetric(sum/float64(len(rows)), "mean-refr/s")
		b.Log("\n" + experiments.RenderTable4(rows))
	}
}

// BenchmarkFigure3_Overhead regenerates Figure 3: normalized execution time
// under ANVIL and under doubled refresh.
func BenchmarkFigure3_Overhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure3(cfg(b))
		if err != nil {
			b.Fatal(err)
		}
		avg, peak := experiments.Figure3Summary(rows)
		b.ReportMetric((avg-1)*100, "anvil-mean-%")
		b.ReportMetric((peak-1)*100, "anvil-peak-%")
		b.Log("\n" + experiments.RenderFigure3(rows))
	}
}

// BenchmarkFigure4_Sensitivity regenerates Figure 4: overhead sensitivity
// to the baseline/light/heavy configurations.
func BenchmarkFigure4_Sensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure4(cfg(b))
		if err != nil {
			b.Fatal(err)
		}
		var base, light, heavy float64
		for _, r := range rows {
			base += r.Baseline - 1
			light += r.Light - 1
			heavy += r.Heavy - 1
		}
		n := float64(len(rows))
		b.ReportMetric(100*base/n, "baseline-mean-%")
		b.ReportMetric(100*light/n, "light-mean-%")
		b.ReportMetric(100*heavy/n, "heavy-mean-%")
		b.Log("\n" + experiments.RenderFigure4(rows))
	}
}

// BenchmarkTable5_ConfigFalsePositives regenerates Table 5: false-positive
// rates under ANVIL-light and ANVIL-heavy.
func BenchmarkTable5_ConfigFalsePositives(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table5(cfg(b))
		if err != nil {
			b.Fatal(err)
		}
		var light, heavy float64
		for _, r := range rows {
			light += r.Light
			heavy += r.Heavy
		}
		b.ReportMetric(light/float64(len(rows)), "light-mean-refr/s")
		b.ReportMetric(heavy/float64(len(rows)), "heavy-mean-refr/s")
		b.Log("\n" + experiments.RenderTable5(rows))
	}
}

// BenchmarkSection45_FutureAttacks regenerates §4.5: ANVIL-heavy vs the
// fast future attack, ANVIL-light vs the slow one — zero flips in both.
func BenchmarkSection45_FutureAttacks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Section45(cfg(b))
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.BitFlips != 0 {
				b.Fatalf("%s: %d flips under %s", r.Scenario, r.BitFlips, r.Config)
			}
			if r.Detections == 0 {
				b.Fatalf("%s: never detected", r.Scenario)
			}
		}
		b.ReportMetric(float64(rows[0].Detections), "fast-detections")
		b.ReportMetric(float64(rows[1].Detections), "slow-detections")
	}
}

// BenchmarkBaselineDefenses is the extension comparison: every mitigation
// in the repository against the CLFLUSH attack.
func BenchmarkBaselineDefenses(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Defenses(cfg(b))
		if err != nil {
			b.Fatal(err)
		}
		if rows[0].BitFlips == 0 {
			b.Fatal("unprotected control run did not flip")
		}
		for _, r := range rows[2:] {
			if r.BitFlips != 0 {
				b.Fatalf("%s allowed %d flips", r.Defense, r.BitFlips)
			}
		}
		b.ReportMetric(float64(rows[0].BitFlips), "unprotected-flips")
		b.Log("\n" + experiments.RenderDefenses(rows))
	}
}
