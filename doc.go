// Package repro is a full reproduction, in pure Go, of
//
//	Aweke et al., "ANVIL: Software-Based Protection Against
//	Next-Generation Rowhammer Attacks", ASPLOS 2016.
//
// The repository contains a deterministic architectural simulator of the
// paper's machine (DRAM with a disturbance model, Sandy Bridge caches, PEBS
// performance counters, a minimal kernel), the paper's attacks (including
// the first CLFLUSH-free rowhammer), the ANVIL detector itself, baseline
// hardware defenses, and a harness that regenerates every table and figure
// of the evaluation. See DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-vs-measured results.
//
// The top-level benchmarks in bench_test.go regenerate the evaluation:
//
//	go test -bench=. -benchtime=1x
package repro
