package repro_test

// Ablation benchmarks for the design choices DESIGN.md calls out: each
// sweeps one knob of the detector or of the disturbance model and reports
// how the headline quantities move. Run with
//
//	go test -bench=Ablation -benchtime=1x
import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/anvil"
	"repro/internal/attack"
	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/machine"
	"repro/internal/workload"
)

// mustProg builds a synthetic workload program, failing the benchmark on
// error.
func mustProg(tb testing.TB, prof workload.Profile) *workload.Synthetic {
	tb.Helper()
	s, err := workload.New(prof)
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

// heavyTrio resolves the heavy-load profiles, failing the benchmark on
// error.
func heavyTrio(tb testing.TB) []workload.Profile {
	tb.Helper()
	trio, err := workload.HeavyLoadTrio()
	if err != nil {
		tb.Fatal(err)
	}
	return trio
}

func newAttackMachine(b *testing.B, cores int) (*machine.Machine, *attack.DoubleSidedFlush) {
	b.Helper()
	cfg := machine.DefaultConfig()
	cfg.Cores = cores
	m, err := machine.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	a, err := attack.NewDoubleSidedFlush(attack.Options{
		Mapper:     m.Mem.DRAM.Mapper(),
		LLC:        cache.SandyBridgeConfig().Levels[2],
		AutoTarget: true,
		BufferMB:   16,
		Contiguous: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := m.Spawn(0, a); err != nil {
		b.Fatal(err)
	}
	v := a.Victim()
	m.Mem.DRAM.PlantWeakRow(v.Bank, v.VictimRow, 400_000)
	return m, a
}

func mustRun(b *testing.B, m *machine.Machine, d time.Duration) {
	b.Helper()
	if err := m.Run(m.Freq.Cycles(d)); err != nil && !errors.Is(err, machine.ErrAllDone) {
		b.Fatal(err)
	}
}

// BenchmarkAblation_Stage1Threshold sweeps the LLC miss threshold: lower
// thresholds catch slower attacks but admit more benign windows to the
// (costly) sampling stage.
func BenchmarkAblation_Stage1Threshold(b *testing.B) {
	for _, thr := range []uint64{5_000, 10_000, 20_000, 40_000} {
		b.Run(fmt.Sprintf("thr=%dK", thr/1000), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// Detection of a full-rate attack.
				m, _ := newAttackMachine(b, 1)
				p := anvil.Baseline()
				p.LLCMissThreshold = thr
				det, err := anvil.New(m, p, nil)
				if err != nil {
					b.Fatal(err)
				}
				det.Start()
				mustRun(b, m, 128*time.Millisecond)
				b.ReportMetric(float64(m.Mem.DRAM.FlipCount()), "flips")
				if ds := det.Stats().Detections; len(ds) > 0 {
					b.ReportMetric(float64(m.Freq.Millis(ds[0].Time)), "first-detect-ms")
				} else {
					b.ReportMetric(-1, "first-detect-ms")
				}

				// Benign stage-2 admission rate (bzip2).
				m2, err := machine.New(func() machine.Config {
					c := machine.DefaultConfig()
					c.Cores = 1
					return c
				}())
				if err != nil {
					b.Fatal(err)
				}
				prof, _ := workload.ByName("bzip2")
				if _, err := m2.Spawn(0, mustProg(b, prof)); err != nil {
					b.Fatal(err)
				}
				det2, err := anvil.New(m2, p, nil)
				if err != nil {
					b.Fatal(err)
				}
				det2.Start()
				mustRun(b, m2, 500*time.Millisecond)
				b.ReportMetric(100*det2.Stats().CrossingFraction(), "bzip2-crossing-%")
			}
		})
	}
}

// BenchmarkAblation_SamplingRate sweeps the PEBS rate: more samples detect
// more reliably but steal more cycles (PMI cost per sample).
func BenchmarkAblation_SamplingRate(b *testing.B) {
	for _, rate := range []uint64{1000, 5000, 20000} {
		b.Run(fmt.Sprintf("rate=%d", rate), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m, _ := newAttackMachine(b, 4)
				for j, prof := range heavyTrio(b) {
					if _, err := m.Spawn(j+1, mustProg(b, prof)); err != nil {
						b.Fatal(err)
					}
				}
				p := anvil.Baseline()
				p.SampleRate = rate
				det, err := anvil.New(m, p, nil)
				if err != nil {
					b.Fatal(err)
				}
				det.Start()
				mustRun(b, m, 192*time.Millisecond)
				st := det.Stats()
				b.ReportMetric(float64(m.Mem.DRAM.FlipCount()), "flips")
				b.ReportMetric(float64(len(st.Detections))/float64(st.SampleWindows+1), "detect-per-window")
				b.ReportMetric(float64(m.Cores[1].Stats.KernelCycles)/1e6, "stolen-Mcycles")
			}
		})
	}
}

// BenchmarkAblation_BankCheck toggles the bank-locality confirmation, the
// paper's filter against thrashing false positives.
func BenchmarkAblation_BankCheck(b *testing.B) {
	for _, companions := range []int{0, 2, 4} {
		b.Run(fmt.Sprintf("companions=%d", companions), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := machine.DefaultConfig()
				cfg.Cores = 1
				m, err := machine.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				prof, _ := workload.ByName("gcc")
				if _, err := m.Spawn(0, mustProg(b, prof)); err != nil {
					b.Fatal(err)
				}
				p := anvil.Baseline()
				p.BankMinSamples = companions
				det, err := anvil.New(m, p, nil)
				if err != nil {
					b.Fatal(err)
				}
				det.Start()
				const dur = 2 * time.Second
				mustRun(b, m, dur)
				b.ReportMetric(float64(det.Stats().Refreshes)/dur.Seconds(), "fp-refr/s")
			}
		})
	}
}

// BenchmarkAblation_AlternationBonus sweeps the disturbance model's
// double-sided coupling: at bonus 0 both techniques need the same number of
// accesses; at 0.82 the ~1.8x Table-1 ratio appears.
func BenchmarkAblation_AlternationBonus(b *testing.B) {
	for _, bonus := range []float64{0, 0.4, 0.82} {
		b.Run(fmt.Sprintf("bonus=%.2f", bonus), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := machine.DefaultConfig()
				cfg.Cores = 1
				cfg.Memory.DRAM.Disturb.AlternationBonus = bonus
				m, err := machine.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				a, err := attack.NewDoubleSidedFlush(attack.Options{
					Mapper:     m.Mem.DRAM.Mapper(),
					LLC:        cache.SandyBridgeConfig().Levels[2],
					AutoTarget: true,
					BufferMB:   16,
					Contiguous: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := m.Spawn(0, a); err != nil {
					b.Fatal(err)
				}
				v := a.Victim()
				m.Mem.DRAM.PlantWeakRow(v.Bank, v.VictimRow, 400_000)
				end := m.Freq.Cycles(192 * time.Millisecond)
				for m.Time() < end && m.Mem.DRAM.FlipCount() == 0 {
					if err := m.Run(m.Time() + m.Freq.Cycles(time.Millisecond)); err != nil &&
						!errors.Is(err, machine.ErrAllDone) {
						b.Fatal(err)
					}
				}
				if m.Mem.DRAM.FlipCount() > 0 {
					b.ReportMetric(float64(a.AggressorAccesses())/1000, "accessesK")
				} else {
					b.ReportMetric(-1, "accessesK")
				}
			}
		})
	}
}

// BenchmarkAblation_LLCPolicy runs the CLFLUSH-free attack against
// different LLC replacement policies: the pattern builder must adapt (or
// report failure) per policy.
func BenchmarkAblation_LLCPolicy(b *testing.B) {
	for _, pol := range []cache.PolicyKind{cache.BitPLRU, cache.TrueLRU, cache.NRU, cache.TreePLRU} {
		b.Run(string(pol), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := machine.DefaultConfig()
				cfg.Cores = 1
				cfg.Memory.Cache.Levels[2].Policy = pol
				m, err := machine.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				a, err := attack.NewClflushFree(attack.Options{
					Mapper:     m.Mem.DRAM.Mapper(),
					LLC:        cfg.Memory.Cache.Levels[2],
					AutoTarget: true,
					BufferMB:   16,
					Contiguous: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := m.Spawn(0, a); err != nil {
					b.Logf("policy %s: no stable pattern (%v)", pol, err)
					b.ReportMetric(-1, "ms-to-flip")
					continue
				}
				v := a.Victim()
				m.Mem.DRAM.PlantWeakRow(v.Bank, v.VictimRow, 400_000)
				end := m.Freq.Cycles(192 * time.Millisecond)
				for m.Time() < end && m.Mem.DRAM.FlipCount() == 0 {
					if err := m.Run(m.Time() + m.Freq.Cycles(time.Millisecond)); err != nil &&
						!errors.Is(err, machine.ErrAllDone) {
						b.Fatal(err)
					}
				}
				if m.Mem.DRAM.FlipCount() > 0 {
					b.ReportMetric(m.Freq.Millis(m.Mem.DRAM.Flips()[0].Time), "ms-to-flip")
				} else {
					b.ReportMetric(-1, "ms-to-flip")
				}
			}
		})
	}
}

// BenchmarkAblation_TimingModel compares the latency-additive DRAM model
// against the command-level engine (tRCD/tRP/tRC/tFAW enforced): the attack
// characteristics should agree in shape, with the command engine slightly
// slower per activation (tRC-bound).
func BenchmarkAblation_TimingModel(b *testing.B) {
	for _, detailed := range []bool{false, true} {
		name := "simple"
		if detailed {
			name = "command-level"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := machine.DefaultConfig()
				cfg.Cores = 1
				if detailed {
					cfg.Memory.DRAM.Detailed = dram.Detailed(cfg.Freq)
				}
				m, err := machine.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				a, err := attack.NewDoubleSidedFlush(attack.Options{
					Mapper:     m.Mem.DRAM.Mapper(),
					LLC:        cache.SandyBridgeConfig().Levels[2],
					AutoTarget: true,
					BufferMB:   16,
					Contiguous: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := m.Spawn(0, a); err != nil {
					b.Fatal(err)
				}
				v := a.Victim()
				m.Mem.DRAM.PlantWeakRow(v.Bank, v.VictimRow, 400_000)
				end := m.Freq.Cycles(192 * time.Millisecond)
				for m.Time() < end && m.Mem.DRAM.FlipCount() == 0 {
					if err := m.Run(m.Time() + m.Freq.Cycles(time.Millisecond)); err != nil &&
						!errors.Is(err, machine.ErrAllDone) {
						b.Fatal(err)
					}
				}
				if m.Mem.DRAM.FlipCount() == 0 {
					b.ReportMetric(-1, "ms-to-flip")
					continue
				}
				b.ReportMetric(m.Freq.Millis(m.Mem.DRAM.Flips()[0].Time), "ms-to-flip")
				b.ReportMetric(float64(a.AggressorAccesses())/1000, "accessesK")
			}
		})
	}
}
